//! The cell-coherent tile evaluation engine: one batch query path from the
//! spatial index to every dense-grid sweep consumer.
//!
//! Every coverage experiment in this repository reduces to "evaluate some
//! predicate at each point of a [`UnitGrid`]". The naive loop asks the
//! [`SpatialGrid`] for candidates once *per point*, re-walking the same
//! 3×3 bucket neighbourhood for every grid point in a cell. The engine
//! instead traverses the grid *tile by tile* (one spatial-index cell's
//! worth of grid points), pins the cell's candidate cameras once through a
//! [`TileCursor`](fullview_model::TileCursor), and answers each point's
//! query with only the exact distance/sector filter over a contiguous
//! candidate snapshot.
//!
//! Invariants the engine maintains (and the differential tests assert):
//!
//! * **Exact partition** — [`GridTiling`] assigns every grid index to
//!   exactly one tile, so tile-order tallies merge to precisely the
//!   row-major result (all report fields are order-independent integer
//!   sums).
//! * **Backend equivalence** — the tile path and the per-point path
//!   enumerate the same covering-camera set for every point; differing
//!   candidate order is erased by the analyzer's direction sort, so
//!   analyses are bit-identical.
//! * **Adaptive traversal** — tiles only pay off when several grid points
//!   share a cell. [`use_tiled`] falls back to the per-point path when the
//!   index has more cells than the grid has points (e.g. an empty network,
//!   whose index floors at 256×256 cells).

use crate::fullview::{CoverageView, PointAnalyzer};
use fullview_geom::{Point, SpatialGrid, UnitGrid};
use fullview_model::{Camera, CameraNetwork, CoverageProvider, TileCursor};

/// Maps a [`UnitGrid`] onto the cells of a [`SpatialGrid`]: every grid
/// point belongs to exactly one tile (the index cell containing it), and
/// each tile's points form a contiguous block of grid columns × rows.
///
/// Grid coordinates are monotone in the point index along each axis, and
/// the cell-of-coordinate map is monotone too, so the columns (rows)
/// owned by an index cell form a contiguous run; the tiling stores just
/// the `cells + 1` run boundaries (shared by both axes — cells and grid
/// are square over the same torus).
#[derive(Debug, Clone)]
pub struct GridTiling {
    /// Index cells per axis.
    cells: usize,
    /// Grid points per axis.
    grid_side: usize,
    /// `starts[c]..starts[c + 1]` is the run of grid columns (and rows)
    /// whose coordinate falls in cell column (row) `c`.
    starts: Vec<usize>,
}

impl GridTiling {
    /// Builds the tiling of `grid` by the cells of `index`.
    ///
    /// # Panics
    ///
    /// Panics if the grid and index cover tori of different side lengths.
    #[must_use]
    pub fn new(index: &SpatialGrid, grid: &UnitGrid) -> Self {
        let cells = index.cells_per_axis();
        let k = grid.side_count();
        let grid_span = grid.spacing() * k as f64;
        assert!(
            (grid_span - index.torus().side()).abs() <= 1e-9 * index.torus().side().max(1.0),
            "grid (side {grid_span}) and spatial index (side {}) cover different tori",
            index.torus().side()
        );
        let mut starts = vec![0usize; cells + 1];
        let mut prev = 0usize;
        for i in 0..k {
            // Column i's x-coordinate (row 0 works: x only depends on i).
            let x = grid.point(i).x;
            let (c, _) = index.cell_of(Point::new(x, x));
            debug_assert!(c >= prev, "cell-of-coordinate must be monotone");
            for boundary in &mut starts[prev + 1..=c] {
                *boundary = i;
            }
            prev = c;
        }
        for boundary in &mut starts[prev + 1..=cells] {
            *boundary = k;
        }
        GridTiling {
            cells,
            grid_side: k,
            starts,
        }
    }

    /// Total number of tiles (index cells), including empty ones.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.cells * self.cells
    }

    /// The index cell `(cx, cy)` of tile `t` (row-major tile ids).
    #[must_use]
    pub fn tile_cell(&self, t: usize) -> (usize, usize) {
        (t % self.cells, t / self.cells)
    }

    /// Number of grid points inside tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    #[must_use]
    pub fn tile_point_count(&self, t: usize) -> usize {
        let (cx, cy) = self.tile_cell(t);
        let cols = self.starts[cx + 1] - self.starts[cx];
        let rows = self.starts[cy + 1] - self.starts[cy];
        cols * rows
    }

    /// Calls `f` with the row-major grid index of every point inside tile
    /// `t`, in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    pub fn for_each_point_in_tile<F: FnMut(usize)>(&self, t: usize, mut f: F) {
        let (cx, cy) = self.tile_cell(t);
        for j in self.starts[cy]..self.starts[cy + 1] {
            let base = j * self.grid_side;
            for i in self.starts[cx]..self.starts[cx + 1] {
                f(base + i);
            }
        }
    }

    /// Total number of grid points across all tiles (`grid.len()`).
    #[must_use]
    pub fn grid_len(&self) -> usize {
        self.grid_side * self.grid_side
    }

    /// The row-major grid-index interval `[min, max]` spanned by tile
    /// `t`'s points (inclusive). Useful for rejecting tiles wholly
    /// outside a contiguous index range without pinning their cell.
    ///
    /// Returns `None` for an empty tile.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    #[must_use]
    pub fn tile_index_span(&self, t: usize) -> Option<(usize, usize)> {
        let (cx, cy) = self.tile_cell(t);
        let (c0, c1) = (self.starts[cx], self.starts[cx + 1]);
        let (r0, r1) = (self.starts[cy], self.starts[cy + 1]);
        if c0 == c1 || r0 == r1 {
            return None;
        }
        Some((r0 * self.grid_side + c0, (r1 - 1) * self.grid_side + c1 - 1))
    }
}

/// Whether the tile path is profitable for this network/grid pair: tiles
/// amortise the bucket walk only when grid points outnumber index cells
/// (at least one point per tile on average). A tiny-radius or empty
/// network floors the index at 256×256 cells, where per-tile pinning
/// would dwarf a small sweep.
#[must_use]
pub fn use_tiled(net: &CameraNetwork, grid: &UnitGrid) -> bool {
    let cells = net.index().cells_per_axis();
    cells * cells <= grid.len()
}

/// A borrowed coverage-query backend handed to sweep callbacks: either the
/// whole network (per-point spatial walk) or a tile cursor pinned to the
/// cell containing the current point. Implements [`CoverageProvider`], so
/// callbacks stay backend-agnostic.
#[derive(Debug, Clone, Copy)]
pub struct CoverageQuery<'a> {
    inner: QueryInner<'a>,
}

#[derive(Debug, Clone, Copy)]
enum QueryInner<'a> {
    Whole(&'a CameraNetwork),
    Tile(&'a TileCursor<'a>),
}

impl<'a> CoverageQuery<'a> {
    /// Wraps the whole-network backend.
    #[must_use]
    pub fn whole(net: &'a CameraNetwork) -> Self {
        CoverageQuery {
            inner: QueryInner::Whole(net),
        }
    }

    /// Wraps a pinned tile cursor.
    #[must_use]
    pub fn tile(cursor: &'a TileCursor<'a>) -> Self {
        CoverageQuery {
            inner: QueryInner::Tile(cursor),
        }
    }
}

impl CoverageProvider for CoverageQuery<'_> {
    fn torus(&self) -> &fullview_geom::Torus {
        match self.inner {
            QueryInner::Whole(net) => net.torus(),
            QueryInner::Tile(cursor) => cursor.network().torus(),
        }
    }

    fn for_each_covering<F: FnMut(&Camera)>(&self, target: Point, f: F) {
        match self.inner {
            QueryInner::Whole(net) => net.for_each_covering(target, f),
            QueryInner::Tile(cursor) => cursor.for_each_covering(target, f),
        }
    }
}

/// Visits every grid point with a ready-to-use coverage backend, choosing
/// the tile path when [`use_tiled`] says it pays off.
///
/// The callback receives `(query, index, point)`; tile traversal visits
/// points in tile order (still deterministic, but not row-major), so
/// callbacks must key results by `index` rather than call order.
pub fn for_each_grid_point<F>(net: &CameraNetwork, grid: &UnitGrid, mut f: F)
where
    F: FnMut(&CoverageQuery<'_>, usize, Point),
{
    if use_tiled(net, grid) {
        let tiling = GridTiling::new(net.index(), grid);
        let mut cursor = net.tile_cursor();
        for t in 0..tiling.tile_count() {
            if tiling.tile_point_count(t) == 0 {
                continue;
            }
            let (cx, cy) = tiling.tile_cell(t);
            cursor.pin(cx, cy);
            let query = CoverageQuery::tile(&cursor);
            tiling.for_each_point_in_tile(t, |idx| f(&query, idx, grid.point(idx)));
        }
    } else {
        let query = CoverageQuery::whole(net);
        for idx in 0..grid.len() {
            f(&query, idx, grid.point(idx));
        }
    }
}

/// Sweeps the grid with a shared [`PointAnalyzer`], handing each point's
/// [`CoverageView`] to the callback — the one-stop entry point for
/// consumers that need the full per-point analysis (full-view predicates,
/// gap statistics, multiplicities).
///
/// Allocation-free once the analyzer and cursor buffers are warm; visits
/// points in tile order (key results by the `usize` grid index).
pub fn sweep_grid<F>(net: &CameraNetwork, grid: &UnitGrid, mut f: F)
where
    F: FnMut(usize, Point, &CoverageView<'_>),
{
    let mut analyzer = PointAnalyzer::new();
    for_each_grid_point(net, grid, |query, idx, point| {
        let view = analyzer.analyze_point_with(query, point);
        f(idx, point, &view);
    });
}

/// [`sweep_grid`] restricted to the contiguous row-major index range
/// `lo..hi` — the scatter unit of the sharded cluster layer, where each
/// daemon evaluates only its assigned slice of the grid.
///
/// Per-point analyses are bit-identical to the full sweep (the same
/// backend-equivalence invariant the differential tests pin down), so
/// concatenating range results over a partition of `0..grid.len()`
/// reproduces the full sweep exactly. Tiles wholly outside the range are
/// skipped before their cell is pinned, so a `1/S` slice costs roughly
/// `1/S` of the full sweep.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > grid.len()`.
pub fn sweep_grid_range<F>(net: &CameraNetwork, grid: &UnitGrid, lo: usize, hi: usize, mut f: F)
where
    F: FnMut(usize, Point, &CoverageView<'_>),
{
    assert!(
        lo <= hi && hi <= grid.len(),
        "range {lo}..{hi} out of bounds for a grid of {} points",
        grid.len()
    );
    if lo == hi {
        return;
    }
    let mut analyzer = PointAnalyzer::new();
    if use_tiled(net, grid) {
        let tiling = GridTiling::new(net.index(), grid);
        let mut cursor = net.tile_cursor();
        for t in 0..tiling.tile_count() {
            let Some((min_idx, max_idx)) = tiling.tile_index_span(t) else {
                continue;
            };
            if max_idx < lo || min_idx >= hi {
                continue;
            }
            let (cx, cy) = tiling.tile_cell(t);
            cursor.pin(cx, cy);
            let query = CoverageQuery::tile(&cursor);
            tiling.for_each_point_in_tile(t, |idx| {
                if idx >= lo && idx < hi {
                    let point = grid.point(idx);
                    let view = analyzer.analyze_point_with(&query, point);
                    f(idx, point, &view);
                }
            });
        }
    } else {
        let query = CoverageQuery::whole(net);
        for idx in lo..hi {
            let point = grid.point(idx);
            let view = analyzer.analyze_point_with(&query, point);
            f(idx, point, &view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullview::analyze_point;
    use fullview_geom::{Angle, Torus};
    use fullview_model::{GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn pseudo_random_net(n: usize, r_base: f64) -> CameraNetwork {
        let mut cams = Vec::new();
        for i in 0..n {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            let facing = (i as f64 * 2.399_963) % (2.0 * PI);
            let r = r_base * (1.0 + (i % 5) as f64 / 5.0);
            let phi = PI / 4.0 + PI / 2.0 * ((i % 3) as f64 / 3.0);
            cams.push(Camera::new(
                Point::new(x, y),
                Angle::new(facing),
                SensorSpec::new(r, phi).unwrap(),
                GroupId(i % 3),
            ));
        }
        CameraNetwork::new(Torus::unit(), cams)
    }

    #[test]
    fn tiling_partitions_the_grid_exactly() {
        let net = pseudo_random_net(80, 0.08);
        for side in [1usize, 7, 13, 40] {
            let grid = UnitGrid::new(Torus::unit(), side);
            let tiling = GridTiling::new(net.index(), &grid);
            assert_eq!(tiling.grid_len(), grid.len());
            let mut seen = vec![0u32; grid.len()];
            let mut total = 0usize;
            for t in 0..tiling.tile_count() {
                let mut in_tile = 0;
                let (cx, cy) = tiling.tile_cell(t);
                tiling.for_each_point_in_tile(t, |idx| {
                    seen[idx] += 1;
                    in_tile += 1;
                    // Every point must actually live in the tile's cell.
                    assert_eq!(
                        net.index().cell_of(grid.point(idx)),
                        (cx, cy),
                        "grid point {idx} assigned to wrong tile"
                    );
                });
                assert_eq!(in_tile, tiling.tile_point_count(t));
                total += in_tile;
            }
            assert_eq!(total, grid.len(), "side={side}");
            assert!(seen.iter().all(|&c| c == 1), "side={side}: not a partition");
        }
    }

    #[test]
    fn sweep_grid_matches_per_point_analysis() {
        let net = pseudo_random_net(120, 0.07);
        let grid = UnitGrid::new(Torus::unit(), 25);
        assert!(use_tiled(&net, &grid), "test intends to exercise tiles");
        let mut visited = vec![false; grid.len()];
        sweep_grid(&net, &grid, |idx, point, view| {
            assert!(!visited[idx]);
            visited[idx] = true;
            let owned = analyze_point(&net, point);
            assert_eq!(view.to_owned(), owned, "idx {idx}");
        });
        assert!(visited.iter().all(|&v| v));
    }

    #[test]
    fn per_point_fallback_when_cells_outnumber_grid() {
        // Empty network: index floors at 256×256 cells, far more than the
        // grid's 64 points — the engine must fall back to per-point mode
        // (and still visit everything).
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 8);
        assert!(!use_tiled(&net, &grid));
        let mut count = 0;
        sweep_grid(&net, &grid, |_, _, view| {
            assert_eq!(view.covering_cameras, 0);
            count += 1;
        });
        assert_eq!(count, grid.len());
    }

    #[test]
    fn range_sweep_partitions_concatenate_to_the_full_sweep() {
        let net = pseudo_random_net(100, 0.07);
        let grid = UnitGrid::new(Torus::unit(), 21);
        assert!(use_tiled(&net, &grid));
        let mut full = vec![None; grid.len()];
        sweep_grid(&net, &grid, |idx, _, view| {
            full[idx] = Some(view.to_owned())
        });

        // Any partition of 0..len must reproduce the full sweep exactly.
        for cuts in [vec![0, 441], vec![0, 100, 441], vec![0, 1, 220, 219, 441]] {
            let mut sorted = cuts.clone();
            sorted.sort_unstable();
            let mut seen = vec![false; grid.len()];
            for pair in sorted.windows(2) {
                sweep_grid_range(&net, &grid, pair[0], pair[1], |idx, point, view| {
                    assert!(!seen[idx], "index {idx} visited twice");
                    seen[idx] = true;
                    assert_eq!(view.to_owned(), analyze_point(&net, point));
                    assert_eq!(Some(view.to_owned()), full[idx], "idx {idx}");
                });
            }
            assert!(seen.iter().all(|&v| v), "partition {cuts:?} missed points");
        }

        // Empty and degenerate ranges are fine.
        sweep_grid_range(&net, &grid, 7, 7, |_, _, _| panic!("empty range"));
    }

    #[test]
    fn range_sweep_per_point_fallback() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 8);
        assert!(!use_tiled(&net, &grid));
        let mut count = 0;
        sweep_grid_range(&net, &grid, 10, 30, |idx, _, view| {
            assert!((10..30).contains(&idx));
            assert_eq!(view.covering_cameras, 0);
            count += 1;
        });
        assert_eq!(count, 20);
    }

    #[test]
    fn tile_index_spans_cover_their_points() {
        let net = pseudo_random_net(80, 0.08);
        let grid = UnitGrid::new(Torus::unit(), 17);
        let tiling = GridTiling::new(net.index(), &grid);
        for t in 0..tiling.tile_count() {
            match tiling.tile_index_span(t) {
                None => assert_eq!(tiling.tile_point_count(t), 0),
                Some((min_idx, max_idx)) => {
                    tiling.for_each_point_in_tile(t, |idx| {
                        assert!(idx >= min_idx && idx <= max_idx);
                    });
                }
            }
        }
    }

    #[test]
    fn coverage_query_backends_agree() {
        let net = pseudo_random_net(60, 0.09);
        let grid = UnitGrid::new(Torus::unit(), 20);
        for_each_grid_point(&net, &grid, |query, _, point| {
            assert_eq!(query.coverage_count(point), net.coverage_count(point));
        });
    }

    #[test]
    fn single_camera_and_giant_radius_degenerate_cases() {
        // n = 1.
        let one = CameraNetwork::new(
            Torus::unit(),
            vec![Camera::new(
                Point::new(0.5, 0.5),
                Angle::ZERO,
                SensorSpec::new(0.2, PI).unwrap(),
                GroupId(0),
            )],
        );
        let grid = UnitGrid::new(Torus::unit(), 12);
        sweep_grid(&one, &grid, |_, point, view| {
            assert_eq!(view.to_owned(), analyze_point(&one, point));
        });
        // Radius beyond the torus side: full-scan candidates everywhere.
        let giant = CameraNetwork::new(
            Torus::unit(),
            vec![Camera::new(
                Point::new(0.3, 0.3),
                Angle::ZERO,
                SensorSpec::new(1.5, PI).unwrap(),
                GroupId(0),
            )],
        );
        sweep_grid(&giant, &grid, |_, point, view| {
            assert_eq!(view.to_owned(), analyze_point(&giant, point));
        });
    }
}
