//! Exact per-point full-view coverage probability under random
//! deployment — going beyond the paper's bounds.
//!
//! The paper brackets full-view coverage between the §III necessary and
//! §IV sufficient conditions and notes (§VI-C) that the truth lies
//! strictly between, conjecturing that no CSA captures it exactly. For a
//! *single point*, however, the probability can be computed in closed
//! form:
//!
//! 1. Conditional on `N` cameras covering the point, their viewed
//!    directions are i.i.d. uniform on the circle (by the isotropy of
//!    uniform/Poisson deployment with uniform orientations).
//! 2. The point is full-view covered iff the `N` arcs of width `2θ`
//!    centred on those directions cover the circle, whose probability is
//!    **Stevens' formula** (W. L. Stevens, *Solution to a Geometrical
//!    Problem in Probability*, Ann. Eugenics 9, 1939):
//!    `P(cover) = Σ_{j=0}^{⌊1/a⌋} (−1)^j · C(N,j) · (1 − j·a)^{N−1}`,
//!    with `a = θ/π` the fractional arc length.
//! 3. Mix over the distribution of `N`: exactly `Binomial(n_y, s_y)` per
//!    group under uniform deployment (per-camera coverage probability =
//!    sensing area, §VI-A), `Poisson(Σ_y n_y s_y)` under Poisson
//!    deployment.
//!
//! The `exact` experiment verifies this against Monte Carlo and shows how
//! the paper's two conditions sandwich it.

use crate::numeric::PoissonPmf;
use crate::theta::EffectiveAngle;
use fullview_model::NetworkProfile;
use std::f64::consts::PI;

/// Stevens' formula: probability that `n_arcs` arcs of fractional length
/// `arc_fraction` (of the whole circle), with i.i.d. uniform start
/// points, cover the circle.
///
/// Edge cases: zero arcs cover nothing (probability 0, unless the arc
/// fraction is ≥ 1 in which case there are still no arcs — still 0);
/// `arc_fraction ≥ 1` with at least one arc covers surely.
///
/// # Panics
///
/// Panics if `arc_fraction` is negative or not finite.
#[must_use]
pub fn stevens_coverage_probability(n_arcs: usize, arc_fraction: f64) -> f64 {
    assert!(
        arc_fraction.is_finite() && arc_fraction >= 0.0,
        "arc fraction must be finite and non-negative, got {arc_fraction}"
    );
    if n_arcs == 0 {
        return 0.0;
    }
    if arc_fraction >= 1.0 {
        return 1.0;
    }
    if arc_fraction == 0.0 {
        return 0.0;
    }
    let n = n_arcs as f64;
    // Below (or at) the deterministic threshold N·a ≤ 1, the arcs cannot
    // cover (total length ≤ circumference, and exact tiling has measure
    // zero): the formula is identically 0 there, but evaluating its
    // alternating sum would be pure cancellation noise.
    if n * arc_fraction <= 1.0 {
        return 0.0;
    }
    // Σ (-1)^j C(N,j) (1-ja)^{N-1} over j with 1 - ja > 0, with a running
    // binomial coefficient. The alternating terms can dwarf the result
    // (e.g. large N with a barely above 1/N), so track the largest term
    // and treat any |sum| below its float-noise floor as exactly 0.
    let mut sum = 0.0f64;
    let mut binom = 1.0f64; // C(N, j)
    let mut max_term = 0.0f64;
    let j_max = (1.0 / arc_fraction).floor() as usize;
    for j in 0..=j_max.min(n_arcs) {
        if j > 0 {
            binom *= (n - (j as f64 - 1.0)) / j as f64;
        }
        let base = 1.0 - j as f64 * arc_fraction;
        if base <= 0.0 {
            break;
        }
        let term = binom * base.powi(n_arcs as i32 - 1);
        max_term = max_term.max(term);
        if j % 2 == 0 {
            sum += term;
        } else {
            sum -= term;
        }
    }
    if sum.abs() < max_term * 1e-11 {
        return 0.0;
    }
    sum.clamp(0.0, 1.0)
}

/// Probability mass function of the number of cameras covering an
/// arbitrary point, under uniform deployment of `profile` with `n`
/// cameras: the convolution of per-group `Binomial(n_y, s_y)`
/// distributions, truncated once the tail mass drops below `1e-12`.
///
/// The per-camera coverage probability equals the camera's sensing area
/// `s_y` (§VI-A) — clamped to 1 for (non-physical) areas above the
/// region.
#[must_use]
pub fn covering_count_pmf_uniform(profile: &NetworkProfile, n: usize) -> Vec<f64> {
    let counts = profile.counts(n);
    let mut pmf = vec![1.0f64];
    for (group, &n_y) in profile.groups().iter().zip(&counts) {
        let p = group.spec().sensing_area().clamp(0.0, 1.0);
        let binom = binomial_pmf(n_y, p);
        pmf = convolve(&pmf, &binom);
    }
    truncate_tail(pmf)
}

/// Probability mass function of the covering count under Poisson
/// deployment with overall density `density`: `Poisson(Σ_y c_y·density·s_y)`,
/// truncated at `1e-12` tail mass.
#[must_use]
pub fn covering_count_pmf_poisson(profile: &NetworkProfile, density: f64) -> Vec<f64> {
    let lambda: f64 = profile
        .groups()
        .iter()
        .map(|g| g.fraction() * density * g.spec().sensing_area())
        .sum();
    let mut pmf = Vec::new();
    let mut cumulative = 0.0;
    for p in PoissonPmf::new(lambda) {
        pmf.push(p);
        cumulative += p;
        if 1.0 - cumulative < 1e-12 && pmf.len() > 1 {
            break;
        }
        if pmf.len() > 100_000 {
            break; // defensive cap; unreachable for sane densities
        }
    }
    pmf
}

/// **Exact** probability that an arbitrary point is full-view covered
/// under uniform deployment — the quantity the paper brackets with
/// `1 − P(F_{S,P}) ≤ P(full-view) ≤ 1 − P(F_{N,P})`.
#[must_use]
pub fn prob_point_full_view_uniform(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
) -> f64 {
    mix_over_counts(&covering_count_pmf_uniform(profile, n), theta)
}

/// Exact probability that an arbitrary point is full-view covered under
/// Poisson deployment with overall density `density`.
#[must_use]
pub fn prob_point_full_view_poisson(
    profile: &NetworkProfile,
    density: f64,
    theta: EffectiveAngle,
) -> f64 {
    mix_over_counts(&covering_count_pmf_poisson(profile, density), theta)
}

fn mix_over_counts(pmf: &[f64], theta: EffectiveAngle) -> f64 {
    let a = theta.radians() / PI;
    pmf.iter()
        .enumerate()
        .map(|(count, p)| p * stevens_coverage_probability(count, a))
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

fn binomial_pmf(n: usize, p: f64) -> Vec<f64> {
    // Recurrence pmf(k+1) = pmf(k) · (n-k)/(k+1) · p/(1-p), started from
    // (1-p)^n; for p extremely close to 1 fall back to the reversed case.
    if p <= 0.0 {
        return vec![1.0];
    }
    if p >= 1.0 {
        let mut v = vec![0.0; n + 1];
        v[n] = 1.0;
        return v;
    }
    let mut v = Vec::with_capacity(n + 1);
    let ratio = p / (1.0 - p);
    let mut cur = (1.0 - p).powi(n as i32);
    if cur == 0.0 {
        // Underflow (huge n·p): build from the mode via normalization.
        // For this library's parameter ranges (s_y ≤ 0.2, n_y ≤ 10^6 with
        // n_y·s_y ≤ ~200) the direct recurrence in log space is enough:
        let log_ratio = ratio.ln();
        let log_start = (n as f64) * (1.0 - p).ln();
        let mut logs = Vec::with_capacity(n + 1);
        let mut cur_log = log_start;
        logs.push(cur_log);
        for k in 0..n {
            cur_log += ((n - k) as f64 / (k + 1) as f64).ln() + log_ratio;
            logs.push(cur_log);
        }
        let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut exps: Vec<f64> = logs.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        for e in &mut exps {
            *e /= total;
        }
        return truncate_tail(exps);
    }
    v.push(cur);
    for k in 0..n {
        cur *= (n - k) as f64 / (k + 1) as f64 * ratio;
        v.push(cur);
    }
    truncate_tail(v)
}

fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Drops a vanishing high-count tail to keep convolutions small.
fn truncate_tail(mut pmf: Vec<f64>) -> Vec<f64> {
    let mut cumulative = 0.0;
    let mut keep = pmf.len();
    for (i, p) in pmf.iter().enumerate() {
        cumulative += p;
        if 1.0 - cumulative < 1e-12 {
            keep = i + 1;
            break;
        }
    }
    pmf.truncate(keep.max(1));
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    #[test]
    fn stevens_edge_cases() {
        assert_eq!(stevens_coverage_probability(0, 0.5), 0.0);
        assert_eq!(stevens_coverage_probability(5, 0.0), 0.0);
        assert_eq!(stevens_coverage_probability(1, 1.0), 1.0);
        assert_eq!(stevens_coverage_probability(3, 2.0), 1.0);
        // One arc shorter than the circle never covers.
        assert_eq!(stevens_coverage_probability(1, 0.9), 0.0);
        // Fewer arcs than 1/a can never cover: N·a < 1.
        assert_eq!(stevens_coverage_probability(3, 0.25), 0.0);
    }

    #[test]
    fn stevens_two_half_arcs() {
        // Two arcs of exactly half the circle cover iff they start exactly
        // opposite — probability 0.
        assert!(stevens_coverage_probability(2, 0.5) < 1e-12);
        // Two arcs of 3/4 circle: formula gives 1 - 2(1/4) = 1/2.
        assert!((stevens_coverage_probability(2, 0.75) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stevens_monotone_in_n_and_a() {
        let mut prev = 0.0;
        for n in 1..40 {
            let p = stevens_coverage_probability(n, 0.2);
            assert!(p >= prev - 1e-12, "not monotone in N at {n}");
            prev = p;
        }
        let mut prev = 0.0;
        for i in 1..20 {
            let a = i as f64 / 20.0;
            let p = stevens_coverage_probability(10, a);
            assert!(p >= prev - 1e-9, "not monotone in a at {a}");
            prev = p;
        }
    }

    #[test]
    fn stevens_matches_monte_carlo() {
        // Brute-force the arc coverage probability for a few (N, a).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for &(n_arcs, a) in &[(4usize, 0.3f64), (6, 0.25), (10, 0.15)] {
            let formula = stevens_coverage_probability(n_arcs, a);
            let trials = 20_000;
            let mut covered = 0usize;
            for _ in 0..trials {
                let mut starts: Vec<f64> = (0..n_arcs).map(|_| rng.gen_range(0.0..1.0)).collect();
                starts.sort_by(|x, y| x.partial_cmp(y).unwrap());
                let mut ok = true;
                for i in 0..n_arcs {
                    let next = if i + 1 == n_arcs {
                        starts[0] + 1.0
                    } else {
                        starts[i + 1]
                    };
                    if next - starts[i] > a + 1e-12 {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    covered += 1;
                }
            }
            let mc = covered as f64 / trials as f64;
            let sigma = (formula * (1.0 - formula) / trials as f64).sqrt();
            assert!(
                (mc - formula).abs() < 5.0 * sigma + 0.005,
                "N={n_arcs}, a={a}: formula {formula} vs MC {mc}"
            );
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one_with_correct_mean() {
        for &(n, p) in &[(10usize, 0.3f64), (100, 0.02), (1000, 0.001)] {
            let pmf = binomial_pmf(n, p);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}, p={p}: sum {total}");
            let mean: f64 = pmf.iter().enumerate().map(|(k, q)| k as f64 * q).sum();
            assert!((mean - n as f64 * p).abs() < 1e-6, "mean {mean}");
        }
    }

    #[test]
    fn binomial_underflow_path() {
        // (1-p)^n underflows for n=50_000, p=0.05 — exercise the log path.
        let pmf = binomial_pmf(50_000, 0.05);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        let mean: f64 = pmf.iter().enumerate().map(|(k, q)| k as f64 * q).sum();
        assert!((mean - 2500.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn covering_count_pmf_mean_matches_n_times_s() {
        let profile = NetworkProfile::builder()
            .group(SensorSpec::with_sensing_area(0.02, PI).unwrap(), 0.5)
            .group(SensorSpec::with_sensing_area(0.01, PI / 2.0).unwrap(), 0.5)
            .build()
            .unwrap();
        let n = 800;
        let pmf = covering_count_pmf_uniform(&profile, n);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mean: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        // E[N] = Σ n_y·s_y = n·s_c for equal fractions here.
        let expect = n as f64 * profile.weighted_sensing_area();
        assert!((mean - expect).abs() < 1e-6, "{mean} vs {expect}");
    }

    #[test]
    fn poisson_count_pmf_mean() {
        let profile =
            NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.015, PI).unwrap());
        let pmf = covering_count_pmf_poisson(&profile, 1000.0);
        let mean: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((mean - 15.0).abs() < 1e-6, "{mean}");
    }

    #[test]
    fn exact_probability_sandwiched_by_conditions() {
        // 1 − P(F_S) ≤ P(full-view) ≤ 1 − P(F_N): the paper's bracket must
        // hold for the exact value across parameters.
        let th = theta(PI / 4.0);
        for &s in &[0.005f64, 0.01, 0.02, 0.04] {
            let profile =
                NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s, PI).unwrap());
            for &n in &[200usize, 800, 2000] {
                let exact = prob_point_full_view_uniform(&profile, n, th);
                let lower =
                    1.0 - crate::uniform_theory::prob_point_fails_sufficient(&profile, n, th);
                let upper =
                    1.0 - crate::uniform_theory::prob_point_fails_necessary(&profile, n, th);
                assert!(
                    lower <= exact + 1e-9 && exact <= upper + 1e-9,
                    "s={s}, n={n}: {lower} ≤ {exact} ≤ {upper} violated"
                );
            }
        }
    }

    #[test]
    fn exact_uniform_close_to_poisson_at_scale() {
        // Binomial mixing converges to Poisson mixing for large n.
        let th = theta(PI / 3.0);
        let profile = NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.01, PI).unwrap());
        let u = prob_point_full_view_uniform(&profile, 2000, th);
        let p = prob_point_full_view_poisson(&profile, 2000.0, th);
        assert!((u - p).abs() < 0.01, "uniform {u} vs poisson {p}");
    }

    #[test]
    fn theta_pi_exact_reduces_to_coverage_probability() {
        // At θ = π one covering camera suffices: exact = P(N ≥ 1).
        let th = theta(PI);
        let profile = NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.01, PI).unwrap());
        let n = 500;
        let exact = prob_point_full_view_uniform(&profile, n, th);
        let expect = 1.0 - (1.0f64 - 0.01).powi(n as i32);
        assert!((exact - expect).abs() < 1e-9, "{exact} vs {expect}");
    }

    #[test]
    fn exact_monotone_in_budget() {
        let th = theta(PI / 4.0);
        let mut prev = 0.0;
        for &s in &[0.002f64, 0.005, 0.01, 0.02, 0.05] {
            let profile =
                NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s, PI).unwrap());
            let p = prob_point_full_view_uniform(&profile, 1000, th);
            assert!(p >= prev - 1e-12, "not monotone at s={s}");
            prev = p;
        }
        assert!(prev > 0.9);
    }
}
