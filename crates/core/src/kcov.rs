//! Traditional k-coverage (§VII-B's comparison baseline).
//!
//! A point is `k`-covered when at least `k` cameras cover it. Full-view
//! coverage with effective angle `θ` implies `⌈π/θ⌉`-coverage, but not
//! conversely — `k`-coverage imposes no constraint on *where* the cameras
//! sit around the object, and a one-sided cluster satisfies it while
//! leaving the far side unwatchable. The `kcov` experiment searches for
//! exactly such counterexamples.

use crate::engine::for_each_grid_point;
use crate::theta::EffectiveAngle;
use fullview_geom::{Point, UnitGrid};
use fullview_model::{CameraNetwork, CoverageProvider};

/// Whether at least `k` cameras cover `point`.
///
/// `k = 0` is trivially true for any point.
#[must_use]
pub fn is_k_covered(net: &CameraNetwork, point: Point, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    // Early-exit count: stop scanning once k coverers are found would need
    // a short-circuiting query; coverage_count is already local thanks to
    // the spatial index, so the simple form is fine.
    net.coverage_count(point) >= k
}

/// The k-coverage multiplicity full-view coverage implies: `k = ⌈π/θ⌉`
/// (§VII-B).
#[must_use]
pub fn implied_k(theta: EffectiveAngle) -> usize {
    theta.necessary_sector_count()
}

/// The minimum coverage multiplicity over a grid — the largest `k` for
/// which the whole grid is `k`-covered.
#[must_use]
pub fn min_coverage_over_grid(net: &CameraNetwork, grid: &UnitGrid) -> usize {
    if grid.is_empty() {
        return 0;
    }
    let mut min = usize::MAX;
    for_each_grid_point(net, grid, |query, _, point| {
        min = min.min(query.coverage_count(point));
    });
    min
}

/// Fraction of grid points that are `k`-covered.
#[must_use]
pub fn k_covered_fraction(net: &CameraNetwork, grid: &UnitGrid, k: usize) -> f64 {
    if grid.is_empty() {
        return 0.0;
    }
    let mut hit = 0usize;
    for_each_grid_point(net, grid, |query, _, point| {
        if query.coverage_count(point) >= k {
            hit += 1;
        }
    });
    hit as f64 / grid.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn net_with_cluster(target: Point, count: usize) -> CameraNetwork {
        // All cameras clustered on one side of the target, facing it.
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let cams: Vec<Camera> = (0..count)
            .map(|i| {
                let dir = Angle::new(0.2 + 0.01 * i as f64);
                Camera::new(
                    torus.offset(target, dir, 0.15),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn zero_k_always_true() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        assert!(is_k_covered(&net, Point::new(0.5, 0.5), 0));
        assert!(!is_k_covered(&net, Point::new(0.5, 0.5), 1));
    }

    #[test]
    fn cluster_is_k_covered_but_not_full_view() {
        // The §VII-B separation: 4-coverage without full-view coverage.
        let p = Point::new(0.5, 0.5);
        let net = net_with_cluster(p, 4);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        assert!(is_k_covered(&net, p, implied_k(theta)));
        assert!(!crate::fullview::is_full_view_covered(&net, p, theta));
    }

    #[test]
    fn full_view_implies_k_coverage() {
        // Ring of ⌈π/θ⌉ cameras evenly spread: full-view covered and
        // therefore k-covered.
        let torus = Torus::unit();
        let p = Point::new(0.5, 0.5);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        let k = implied_k(theta);
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let cams: Vec<Camera> = (0..k)
            .map(|i| {
                let dir = Angle::new(i as f64 * 2.0 * PI / k as f64);
                Camera::new(torus.offset(p, dir, 0.15), dir.opposite(), spec, GroupId(0))
            })
            .collect();
        let net = CameraNetwork::new(torus, cams);
        assert!(crate::fullview::is_full_view_covered(&net, p, theta));
        assert!(is_k_covered(&net, p, k));
    }

    #[test]
    fn min_coverage_over_grid_empty_network() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 4);
        assert_eq!(min_coverage_over_grid(&net, &grid), 0);
    }

    #[test]
    fn k_covered_fraction_monotone_in_k() {
        let p = Point::new(0.5, 0.5);
        let net = net_with_cluster(p, 6);
        let grid = UnitGrid::new(Torus::unit(), 8);
        let mut prev = 1.1;
        for k in 0..5 {
            let f = k_covered_fraction(&net, &grid, k);
            assert!(f <= prev, "k={k}");
            prev = f;
        }
    }
}
