//! Error types for the coverage theory and algorithms.

use std::error::Error;
use std::fmt;

/// Errors produced by the full-view coverage algorithms and formulas.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The effective angle `θ` was outside `(0, π]`.
    InvalidEffectiveAngle {
        /// The offending value.
        theta: f64,
    },
    /// A population size too small for the asymptotic formulas
    /// (which involve `ln ln n` and therefore need `n ≥ 3`).
    PopulationTooSmall {
        /// The offending value.
        n: usize,
    },
    /// A probability-like parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A numeric search (e.g. for a critical spacing or count) failed to
    /// bracket a solution.
    SearchFailed {
        /// Human-readable description of the search.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidEffectiveAngle { theta } => {
                write!(f, "effective angle must lie in (0, π], got {theta}")
            }
            CoreError::PopulationTooSmall { n } => {
                write!(f, "asymptotic formulas need n >= 3, got {n}")
            }
            CoreError::InvalidProbability { name, value } => {
                write!(f, "{name} must lie in [0, 1], got {value}")
            }
            CoreError::SearchFailed { what } => write!(f, "search failed: {what}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(CoreError::InvalidEffectiveAngle { theta: 4.0 }
            .to_string()
            .contains('4'));
        assert!(CoreError::PopulationTooSmall { n: 1 }
            .to_string()
            .contains('1'));
        assert!(CoreError::InvalidProbability {
            name: "gamma",
            value: 2.0
        }
        .to_string()
        .contains("gamma"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
