//! k-full-view coverage: fault-tolerant full-view coverage.
//!
//! Just as classical coverage hardens into k-coverage for fault
//! tolerance (§VII-B), full-view coverage hardens naturally: a point is
//! **k-full-view covered** when *every* facing direction is watched,
//! within the effective angle `θ`, by at least `k` distinct cameras — so
//! any `k − 1` camera failures leave the point full-view covered.
//!
//! Algorithm: the view multiplicity of a facing direction `d` is the
//! number of viewed directions within `θ` of `d`, i.e. the depth of `d`
//! under the arcs `[β_i − θ, β_i + θ]`. The minimum depth over the
//! circle is computed by a circular sweep over arc endpoints; the point
//! is k-full-view covered iff that minimum is at least `k`.

use crate::engine::{sweep_grid, sweep_grid_range};
use crate::fullview::analyze_point;
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, Point, UnitGrid, ANGLE_EPS};
use fullview_model::CameraNetwork;
use std::f64::consts::TAU;

/// The minimum, over all facing directions, of the number of covering
/// cameras whose viewed direction lies within `θ` — the *view
/// multiplicity* of the point.
///
/// `0` means some facing direction is unwatched (not full-view covered);
/// `k` means the point survives any `k − 1` failures. A camera
/// co-located with the point counts towards every direction.
#[must_use]
pub fn view_multiplicity(net: &CameraNetwork, point: Point, theta: EffectiveAngle) -> usize {
    let coverage = analyze_point(net, point);
    let colocated_bonus = usize::from(coverage.has_colocated_camera);
    min_arc_depth(&coverage.viewed_directions, theta.radians()) + colocated_bonus
}

/// Calls `f(index, multiplicity)` with the view multiplicity of every
/// point of `grid` — the batch counterpart of [`view_multiplicity`],
/// sweeping tile-coherently through the shared evaluation engine (points
/// arrive in tile order; key results by `index`).
pub fn for_each_view_multiplicity<F: FnMut(usize, usize)>(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    mut f: F,
) {
    sweep_grid(net, grid, |idx, _, view| {
        let colocated_bonus = usize::from(view.has_colocated_camera);
        f(
            idx,
            min_arc_depth(view.viewed_directions, theta.radians()) + colocated_bonus,
        );
    });
}

/// Counts the points of the row-major grid index range `lo..hi` whose
/// view multiplicity is at least `k` — the scatter unit of the cluster
/// layer's `kfull` query. Summing range counts over a partition of
/// `0..grid.len()` equals the full-grid count, since each point's
/// multiplicity depends only on the network.
///
/// `k = 0` counts every point in the range. For supported
/// configurations the count runs through the
/// [`SectorMaskKernel`](crate::SectorMaskKernel)'s per-sector depth
/// screen, paying for the exact arc sweep only on screen-undecided
/// points; the answer is bit-identical to the wholesale exact sweep
/// either way.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > grid.len()`.
#[must_use]
pub fn count_k_view_range(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    k: usize,
    lo: usize,
    hi: usize,
) -> usize {
    assert!(
        lo <= hi && hi <= grid.len(),
        "range {lo}..{hi} out of bounds for a grid of {} points",
        grid.len()
    );
    if k == 0 {
        return hi - lo;
    }
    let mut analyzer = crate::fullview::PointAnalyzer::new();
    let mut exact = |cursor: &fullview_model::TileCursor<'_>, point: Point, want: usize| {
        let view = analyzer.analyze_point_with(cursor, point);
        let colocated_bonus = usize::from(view.has_colocated_camera);
        min_arc_depth(view.viewed_directions, theta.radians()) + colocated_bonus >= want
    };
    if let Some(meeting) =
        crate::mask::count_k_screened_range(net, grid, theta, k, lo, hi, &mut exact)
    {
        return meeting;
    }
    let mut meeting = 0usize;
    sweep_grid_range(net, grid, lo, hi, |_, _, view| {
        let colocated_bonus = usize::from(view.has_colocated_camera);
        if min_arc_depth(view.viewed_directions, theta.radians()) + colocated_bonus >= k {
            meeting += 1;
        }
    });
    meeting
}

/// Whether every facing direction of `point` is watched by at least `k`
/// cameras within the effective angle — see [`view_multiplicity`].
///
/// `k = 0` is trivially true; `k = 1` coincides with plain full-view
/// coverage.
#[must_use]
pub fn is_k_full_view_covered(
    net: &CameraNetwork,
    point: Point,
    theta: EffectiveAngle,
    k: usize,
) -> bool {
    if k == 0 {
        return true;
    }
    view_multiplicity(net, point, theta) >= k
}

/// Minimum coverage depth over the circle of the arcs of half-width
/// `half_width` centred on `centers`.
///
/// Circular sweep: each arc contributes a `+1` event at its start and a
/// `−1` event just after its end; scanning events in angular order while
/// carrying the wrap-around depth yields the running depth between
/// events, whose minimum is the answer. Runs in `O(c log c)`. Public so
/// property tests can pin it against a naive `O(n²)` reference.
pub fn min_arc_depth(centers: &[Angle], half_width: f64) -> usize {
    if centers.is_empty() {
        return 0;
    }
    if half_width >= TAU / 2.0 - ANGLE_EPS {
        // Every arc is the full circle.
        return centers.len();
    }
    // Events: (angle, delta). Starts sort before ends at the same angle so
    // that a direction exactly on a closed boundary counts as covered. The
    // scan starts at angle 0 with depth = number of arcs spanning the
    // 0/2π seam (their normalized end precedes their normalized start);
    // those arcs are then correctly switched off by their −1 event early
    // in the scan and back on by their +1 event late in it, so no arc is
    // ever double-counted.
    let mut events: Vec<(f64, i32)> = Vec::with_capacity(centers.len() * 2);
    let mut depth: i32 = 0;
    for c in centers {
        let start = c.rotate(-half_width).radians();
        let end = c.rotate(half_width + 2.0 * ANGLE_EPS).radians();
        if end < start {
            depth += 1; // covers the seam, live at the start of the scan
        }
        events.push((start, 1));
        events.push((end, -1));
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite angles")
            .then(b.1.cmp(&a.1)) // +1 before −1 at equal angle
    });
    let mut min_depth = depth;
    for (_, delta) in events {
        depth += delta;
        min_depth = min_depth.min(depth);
    }
    debug_assert!(min_depth >= 0, "sweep depth went negative");
    min_depth.max(0) as usize
}

/// Poisson-deployment analogue of Theorem 3 for k-full-view coverage:
/// the probability that an arbitrary point meets the *k-necessary*
/// condition (every `2θ`-sector contains at least `k` covering cameras),
/// under the paper's sector-independence approximation.
///
/// The pooled covering count of one sector is
/// `Poisson(Σ_y (θ/π)·n_y·s_y)` (superposition of the per-group thinned
/// processes), so
/// `P = [P(Poisson(λ) ≥ k)]^{⌈π/θ⌉}`.
///
/// With `k = 1` this reduces exactly to
/// [`crate::prob_point_meets_necessary_poisson`].
#[must_use]
pub fn prob_point_meets_necessary_k_poisson(
    profile: &fullview_model::NetworkProfile,
    density: f64,
    theta: EffectiveAngle,
    k: usize,
) -> f64 {
    use crate::numeric::PoissonPmf;
    use std::f64::consts::PI;
    if k == 0 {
        return 1.0;
    }
    let lambda: f64 = profile
        .groups()
        .iter()
        .map(|g| (theta.radians() / PI) * g.fraction() * density * g.spec().sensing_area())
        .sum();
    let tail_below: f64 = PoissonPmf::new(lambda).take(k).sum();
    let sector_ok = (1.0 - tail_below).clamp(0.0, 1.0);
    sector_ok.powi(theta.necessary_sector_count() as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Torus;
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    fn ring(target: Point, dirs: &[f64]) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let cams: Vec<Camera> = dirs
            .iter()
            .map(|&d| {
                let dir = Angle::new(d);
                Camera::new(
                    torus.offset(target, dir, 0.1),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn empty_network_multiplicity_zero() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let p = Point::new(0.5, 0.5);
        assert_eq!(view_multiplicity(&net, p, theta(PI / 2.0)), 0);
        assert!(is_k_full_view_covered(&net, p, theta(PI / 2.0), 0));
        assert!(!is_k_full_view_covered(&net, p, theta(PI / 2.0), 1));
    }

    #[test]
    fn k1_matches_plain_full_view() {
        let p = Point::new(0.5, 0.5);
        for count in 1..9usize {
            let dirs: Vec<f64> = (0..count).map(|i| i as f64 * TAU / count as f64).collect();
            let net = ring(p, &dirs);
            for t in [0.3, PI / 4.0, PI / 2.0, PI] {
                let th = theta(t);
                assert_eq!(
                    is_k_full_view_covered(&net, p, th, 1),
                    crate::fullview::is_full_view_covered(&net, p, th),
                    "count={count}, θ={t}"
                );
            }
        }
    }

    #[test]
    fn theta_pi_multiplicity_is_camera_count() {
        // Every arc is the whole circle at θ = π.
        let p = Point::new(0.5, 0.5);
        let net = ring(p, &[0.0, 1.0, 2.0, 4.0]);
        assert_eq!(view_multiplicity(&net, p, theta(PI)), 4);
    }

    #[test]
    fn evenly_spaced_ring_multiplicity() {
        // 8 cameras at spacing π/4; with θ = π/4 each direction sees the
        // arcs of the 2 (boundary: 3) nearest cameras — min depth 2.
        let p = Point::new(0.5, 0.5);
        let dirs: Vec<f64> = (0..8).map(|i| i as f64 * TAU / 8.0).collect();
        let net = ring(p, &dirs);
        assert_eq!(view_multiplicity(&net, p, theta(PI / 4.0)), 2);
        // Halve θ: arcs shrink to width π/4, min depth 1.
        assert_eq!(view_multiplicity(&net, p, theta(PI / 8.0)), 1);
        // θ slightly under π/8: gaps appear.
        assert_eq!(view_multiplicity(&net, p, theta(PI / 8.0 - 0.01)), 0);
    }

    #[test]
    fn multiplicity_survives_failures() {
        // k-full-view coverage means any k−1 removals keep full-view.
        let p = Point::new(0.5, 0.5);
        let dirs: Vec<f64> = (0..12).map(|i| i as f64 * TAU / 12.0).collect();
        let net = ring(p, &dirs);
        let th = theta(PI / 3.0);
        let k = view_multiplicity(&net, p, th);
        assert!(k >= 2, "fixture should be at least 2-full-view covered");
        // Remove any single camera: still full-view covered.
        for skip in 0..net.len() {
            let mut idx = 0;
            let reduced = net.filter(|_| {
                let keep = idx != skip;
                idx += 1;
                keep
            });
            assert!(
                crate::fullview::is_full_view_covered(&reduced, p, th),
                "single failure {skip} broke full-view despite multiplicity {k}"
            );
        }
    }

    #[test]
    fn colocated_camera_adds_one_everywhere() {
        let torus = Torus::unit();
        let p = Point::new(0.5, 0.5);
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let mut cams = vec![Camera::new(p, Angle::ZERO, spec, GroupId(0))];
        // Plus a one-sided camera.
        cams.push(Camera::new(
            torus.offset(p, Angle::ZERO, 0.1),
            Angle::new(PI),
            spec,
            GroupId(0),
        ));
        let net = CameraNetwork::new(torus, cams);
        let th = theta(PI / 4.0);
        // Colocated alone gives multiplicity 1 everywhere; the side camera
        // raises it to 2 only near direction 0.
        assert_eq!(view_multiplicity(&net, p, th), 1);
        assert!(is_k_full_view_covered(&net, p, th, 1));
        assert!(!is_k_full_view_covered(&net, p, th, 2));
    }

    #[test]
    fn min_depth_brute_force_agreement() {
        // Compare the sweep against dense sampling of the circle.
        let centers: Vec<Angle> = [0.3f64, 0.5, 1.8, 2.2, 4.4, 5.9, 6.1]
            .iter()
            .map(|&a| Angle::new(a))
            .collect();
        for half in [0.1, 0.4, 0.9, 1.5, 2.5] {
            let sweep = min_arc_depth(&centers, half);
            let mut brute = usize::MAX;
            for i in 0..7200 {
                let d = Angle::new(i as f64 * TAU / 7200.0);
                let depth = centers
                    .iter()
                    .filter(|c| c.distance(d) <= half + 1e-9)
                    .count();
                brute = brute.min(depth);
            }
            assert_eq!(sweep, brute, "half-width {half}");
        }
    }

    #[test]
    fn k_poisson_reduces_to_theorem_3_at_k1() {
        let profile = fullview_model::NetworkProfile::builder()
            .group(SensorSpec::new(0.08, PI).unwrap(), 0.6)
            .group(SensorSpec::new(0.11, PI / 3.0).unwrap(), 0.4)
            .build()
            .unwrap();
        let th = theta(PI / 4.0);
        for density in [100.0, 500.0, 2000.0] {
            let k1 = prob_point_meets_necessary_k_poisson(&profile, density, th, 1);
            let thm3 =
                crate::poisson_theory::prob_point_meets_necessary_poisson(&profile, density, th);
            // Pooled-λ form vs per-group product form: identical because
            // 1 − Π_y e^{−λ_y} ... both equal 1 − e^{−Σλ_y}.
            assert!(
                (k1 - thm3).abs() < 1e-12,
                "density {density}: {k1} vs {thm3}"
            );
        }
    }

    #[test]
    fn k_poisson_monotone_and_bounded() {
        let profile =
            fullview_model::NetworkProfile::homogeneous(SensorSpec::new(0.1, PI).unwrap());
        let th = theta(PI / 4.0);
        let mut prev = 1.0;
        for k in 0..6 {
            let p = prob_point_meets_necessary_k_poisson(&profile, 800.0, th, k);
            assert!((0.0..=1.0).contains(&p));
            assert!(p <= prev + 1e-12, "not decreasing in k at {k}");
            prev = p;
        }
        assert_eq!(
            prob_point_meets_necessary_k_poisson(&profile, 800.0, th, 0),
            1.0
        );
    }

    #[test]
    fn range_counts_sum_to_the_full_count() {
        let p = Point::new(0.5, 0.5);
        let dirs: Vec<f64> = (0..9).map(|i| i as f64 * TAU / 9.0).collect();
        let net = ring(p, &dirs);
        let grid = UnitGrid::new(Torus::unit(), 15);
        let th = theta(PI / 3.0);
        for k in 0..3usize {
            let mut full = 0usize;
            for_each_view_multiplicity(&net, &grid, th, |_, m| full += usize::from(m >= k));
            for cuts in [vec![0, 225], vec![0, 97, 225], vec![0, 1, 120, 121, 225]] {
                let split: usize = cuts
                    .windows(2)
                    .map(|w| count_k_view_range(&net, &grid, th, k, w[0], w[1]))
                    .sum();
                assert_eq!(split, full, "k={k} partition {cuts:?}");
            }
        }
    }

    #[test]
    fn multiplicity_monotone_in_theta() {
        let p = Point::new(0.4, 0.6);
        let dirs: Vec<f64> = (0..10).map(|i| (i as f64 * 1.7) % TAU).collect();
        let net = ring(p, &dirs);
        let mut prev = 0;
        for i in 1..=10 {
            let th = theta(i as f64 * PI / 10.0);
            let m = view_multiplicity(&net, p, th);
            assert!(m >= prev, "multiplicity dropped at θ index {i}");
            prev = m;
        }
    }
}
