//! Trajectory (path) full-view coverage.
//!
//! Barrier coverage (§VIII) asks whether *some* belt stops every
//! crossing; the dual operational question is about a *known* route: a
//! patrol path, a wildlife corridor, a vehicle lane. This module samples
//! a polyline at a fixed arc-length step and reports how much of the
//! route is full-view covered, where the exposed stretches are, and the
//! worst (longest) exposed stretch — the window in which a subject could
//! traverse unidentified.

use crate::fullview::is_full_view_covered;
use crate::theta::EffectiveAngle;
use fullview_geom::{Point, Torus};
use fullview_model::CameraNetwork;
use std::fmt;

/// A polyline route across the region. Segments are geodesics on the
/// torus (shortest wrap-aware straight lines between waypoints).
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    waypoints: Vec<Point>,
}

impl Path {
    /// Creates a path from waypoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two waypoints are given.
    #[must_use]
    pub fn new(waypoints: Vec<Point>) -> Self {
        assert!(waypoints.len() >= 2, "a path needs at least two waypoints");
        Path { waypoints }
    }

    /// The waypoints.
    #[must_use]
    pub fn waypoints(&self) -> &[Point] {
        &self.waypoints
    }

    /// Total torus arc length of the path.
    #[must_use]
    pub fn length(&self, torus: &Torus) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| torus.distance(w[0], w[1]))
            .sum()
    }

    /// Samples the path at (approximately) `step` arc-length intervals,
    /// always including both endpoints of each segment.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not finite and strictly positive.
    #[must_use]
    pub fn sample(&self, torus: &Torus, step: f64) -> Vec<Point> {
        assert!(
            step.is_finite() && step > 0.0,
            "sample step must be finite and positive, got {step}"
        );
        let mut samples = Vec::new();
        for w in self.waypoints.windows(2) {
            let (a, b) = (w[0], w[1]);
            let d = torus.distance(a, b);
            let (dx, dy) = torus.displacement(a, b);
            let pieces = (d / step).ceil().max(1.0) as usize;
            for i in 0..pieces {
                let t = i as f64 / pieces as f64;
                samples.push(torus.wrap(a.translate(dx * t, dy * t)));
            }
        }
        samples.push(*self.waypoints.last().expect("≥ 2 waypoints"));
        samples
    }
}

/// One maximal exposed (not full-view covered) stretch of a sampled
/// path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposedStretch {
    /// Index of the first exposed sample.
    pub start_index: usize,
    /// Number of consecutive exposed samples.
    pub samples: usize,
    /// Estimated arc length of the stretch.
    pub length: f64,
}

/// Coverage report for a sampled path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathCoverageReport {
    /// Number of path samples evaluated.
    pub total_samples: usize,
    /// Samples that are full-view covered.
    pub covered_samples: usize,
    /// Total path length.
    pub path_length: f64,
    /// Maximal exposed stretches, in path order.
    pub exposed: Vec<ExposedStretch>,
}

impl PathCoverageReport {
    /// Fraction of samples full-view covered.
    #[must_use]
    pub fn covered_fraction(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.covered_samples as f64 / self.total_samples as f64
        }
    }

    /// The longest exposed stretch, if any.
    #[must_use]
    pub fn worst_exposure(&self) -> Option<&ExposedStretch> {
        self.exposed
            .iter()
            .max_by(|a, b| a.length.partial_cmp(&b.length).expect("finite lengths"))
    }

    /// Whether the whole sampled path is full-view covered.
    #[must_use]
    pub fn fully_covered(&self) -> bool {
        self.covered_samples == self.total_samples
    }
}

impl fmt::Display for PathCoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "path[{} samples, length {:.4}]: {:.4} covered, {} exposed stretches, worst {:.4}",
            self.total_samples,
            self.path_length,
            self.covered_fraction(),
            self.exposed.len(),
            self.worst_exposure().map_or(0.0, |e| e.length)
        )
    }
}

/// Evaluates full-view coverage along `path`, sampled every `step` of
/// arc length.
///
/// # Panics
///
/// Panics if `step` is not finite and strictly positive.
#[must_use]
pub fn evaluate_path(
    net: &CameraNetwork,
    path: &Path,
    theta: EffectiveAngle,
    step: f64,
) -> PathCoverageReport {
    let torus = net.torus();
    let samples = path.sample(torus, step);
    let verdicts: Vec<bool> = samples
        .iter()
        .map(|p| is_full_view_covered(net, *p, theta))
        .collect();
    let covered_samples = verdicts.iter().filter(|v| **v).count();

    let mut exposed = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, covered) in verdicts.iter().enumerate() {
        match (covered, run_start) {
            (false, None) => run_start = Some(i),
            (true, Some(start)) => {
                exposed.push(make_stretch(&samples, torus, start, i - start));
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(start) = run_start {
        exposed.push(make_stretch(&samples, torus, start, verdicts.len() - start));
    }

    PathCoverageReport {
        total_samples: samples.len(),
        covered_samples,
        path_length: path.length(torus),
        exposed,
    }
}

fn make_stretch(samples: &[Point], torus: &Torus, start: usize, count: usize) -> ExposedStretch {
    let mut length = 0.0;
    for i in start..(start + count).min(samples.len()) - 1 {
        length += torus.distance(samples[i], samples[i + 1]);
    }
    ExposedStretch {
        start_index: start,
        samples: count,
        length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Angle;
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta() -> EffectiveAngle {
        EffectiveAngle::new(PI / 2.0).unwrap()
    }

    /// Omni-camera rings full-view covering discs around the anchors.
    fn covered_at(anchors: &[(f64, f64)]) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.15, 2.0 * PI).unwrap();
        let mut cams = Vec::new();
        for &(x, y) in anchors {
            for k in 0..6 {
                let dir = Angle::new(k as f64 * PI / 3.0);
                cams.push(Camera::new(
                    torus.offset(Point::new(x, y), dir, 0.05),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                ));
            }
        }
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn path_length_and_sampling() {
        let torus = Torus::unit();
        let path = Path::new(vec![Point::new(0.1, 0.5), Point::new(0.4, 0.5)]);
        assert!((path.length(&torus) - 0.3).abs() < 1e-12);
        let samples = path.sample(&torus, 0.05);
        assert!(samples.len() >= 7);
        // Samples advance monotonically along x.
        for w in samples.windows(2) {
            assert!(w[1].x >= w[0].x - 1e-12);
        }
        assert_eq!(*samples.last().unwrap(), Point::new(0.4, 0.5));
    }

    #[test]
    fn path_crosses_seam_geodesically() {
        let torus = Torus::unit();
        let path = Path::new(vec![Point::new(0.9, 0.5), Point::new(0.1, 0.5)]);
        // Geodesic goes through the seam: length 0.2, not 0.8.
        assert!((path.length(&torus) - 0.2).abs() < 1e-12);
        let samples = path.sample(&torus, 0.05);
        for p in &samples {
            assert!(torus.contains(*p), "{p}");
            assert!(
                p.x >= 0.85 || p.x <= 0.15,
                "sample {p} left the seam corridor"
            );
        }
    }

    #[test]
    fn fully_covered_path() {
        let net = covered_at(&[(0.3, 0.5), (0.5, 0.5), (0.7, 0.5)]);
        let path = Path::new(vec![Point::new(0.3, 0.5), Point::new(0.7, 0.5)]);
        let r = evaluate_path(&net, &path, theta(), 0.02);
        assert!(r.fully_covered(), "{r}");
        assert!(r.exposed.is_empty());
        assert_eq!(r.covered_fraction(), 1.0);
    }

    #[test]
    fn gap_in_the_middle_detected() {
        // Coverage at both ends, nothing in the middle of the route.
        let net = covered_at(&[(0.1, 0.5), (0.9, 0.5)]);
        let path = Path::new(vec![
            Point::new(0.1, 0.5),
            Point::new(0.5, 0.5),
            Point::new(0.9, 0.5),
        ]);
        let r = evaluate_path(&net, &path, theta(), 0.02);
        assert!(!r.fully_covered());
        assert!(r.covered_fraction() > 0.0 && r.covered_fraction() < 1.0);
        assert_eq!(r.exposed.len(), 1, "{r}");
        let worst = r.worst_exposure().unwrap();
        // The uncovered middle is roughly 0.8 − 2·(ring reach ≈ 0.2).
        assert!(worst.length > 0.2, "worst stretch {:.3}", worst.length);
    }

    #[test]
    fn uncovered_run_at_path_end_counted() {
        let net = covered_at(&[(0.1, 0.5)]);
        let path = Path::new(vec![Point::new(0.1, 0.5), Point::new(0.6, 0.5)]);
        let r = evaluate_path(&net, &path, theta(), 0.02);
        assert!(!r.fully_covered());
        let last = r.exposed.last().unwrap();
        assert_eq!(
            last.start_index + last.samples,
            r.total_samples,
            "final exposed run must reach the path end"
        );
    }

    #[test]
    fn empty_network_everything_exposed() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let path = Path::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.5)]);
        let r = evaluate_path(&net, &path, theta(), 0.05);
        assert_eq!(r.covered_samples, 0);
        assert_eq!(r.exposed.len(), 1);
        assert!((r.worst_exposure().unwrap().length - r.path_length).abs() < 0.06);
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn single_waypoint_panics() {
        let _ = Path::new(vec![Point::new(0.5, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let path = Path::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.5)]);
        let _ = evaluate_path(&net, &path, theta(), 0.0);
    }
}
