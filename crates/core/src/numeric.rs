//! Numerically careful helpers shared by the theory formulas.
//!
//! The paper's critical-sensing-area expressions combine quantities of the
//! form `1 − (1 − δ)^{1/K}` with `δ = 1/(n ln n)` shrinking to zero; naive
//! evaluation loses all precision long before the asymptotic regime is
//! reachable. This module provides the stable building blocks, plus the
//! tolerant integer roundings needed to count sectors when `θ` divides `π`
//! exactly.

/// Relative tolerance used by [`tolerant_ceil`] / [`tolerant_floor`] to
/// absorb float error in ratios like `π / (π/4)`.
const RATIO_EPS: f64 = 1e-9;

/// Ceiling that treats values within `RATIO_EPS` (1e-9) *above* an integer as
/// that integer, so `⌈4.0000000001⌉ = 4` but `⌈4.1⌉ = 5`.
///
/// # Panics
///
/// Panics if `x` is not finite and positive.
#[must_use]
pub fn tolerant_ceil(x: f64) -> usize {
    assert!(
        x.is_finite() && x > 0.0,
        "expected finite positive ratio, got {x}"
    );
    let f = x.floor();
    if x - f <= RATIO_EPS {
        f as usize
    } else {
        f as usize + 1
    }
}

/// Floor that treats values within `RATIO_EPS` (1e-9) *below* an integer as
/// that integer, so `⌊3.9999999999⌋ = 4` but `⌊3.9⌋ = 3`.
///
/// # Panics
///
/// Panics if `x` is not finite and positive.
#[must_use]
pub fn tolerant_floor(x: f64) -> usize {
    assert!(
        x.is_finite() && x > 0.0,
        "expected finite positive ratio, got {x}"
    );
    let f = x.floor();
    if x - f >= 1.0 - RATIO_EPS {
        f as usize + 1
    } else {
        f as usize
    }
}

/// Computes `1 − (1 − δ)^{1/k}` without catastrophic cancellation.
///
/// For small `δ` the result is `≈ δ/k`, far below `f64` granularity around
/// 1.0; evaluating through `ln_1p`/`exp_m1` keeps full relative precision:
/// `1 − exp(ln(1−δ)/k) = −expm1(ln_1p(−δ)/k)`.
///
/// # Panics
///
/// Panics if `δ ∉ [0, 1]` or `k == 0`.
#[must_use]
pub fn one_minus_root_complement(delta: f64, k: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&delta),
        "delta must lie in [0, 1], got {delta}"
    );
    assert!(k > 0, "root order must be positive");
    if delta >= 1.0 {
        return 1.0;
    }
    -((-delta).ln_1p() / k as f64).exp_m1()
}

/// Iterator over the Poisson pmf `P(k; λ)` for `k = 0, 1, 2, …`, computed
/// by the stable multiplicative recurrence `P(k) = P(k−1)·λ/k`.
///
/// For large `λ` the `k = 0` term underflows to zero in `f64`; terms near
/// the mode are then reconstructed... they are **not** — instead callers
/// needing large-`λ` sums should use the closed forms in
/// the Poisson-theory module. This iterator is intended for the truncated
/// series of Theorems 3–4 at the moderate `λ = θ n_y r_y²` values arising
/// in the experiments (≲ 50), where the recurrence is exact to working
/// precision.
#[derive(Debug, Clone)]
pub struct PoissonPmf {
    lambda: f64,
    k: u64,
    current: f64,
}

impl PoissonPmf {
    /// Creates the pmf iterator for mean `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Poisson mean must be finite and non-negative, got {lambda}"
        );
        PoissonPmf {
            lambda,
            k: 0,
            current: (-lambda).exp(),
        }
    }
}

impl Iterator for PoissonPmf {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let out = self.current;
        self.k += 1;
        self.current *= self.lambda / self.k as f64;
        Some(out)
    }
}

/// Finds a root of `f` on `[lo, hi]` by bisection, assuming
/// `f(lo)` and `f(hi)` have opposite signs.
///
/// Returns the midpoint of the final bracket after `iters` halvings
/// (64 halvings resolve any `f64` interval to machine precision).
///
/// # Panics
///
/// Panics if the bracket is invalid (`lo >= hi`) or if `f(lo)` and
/// `f(hi)` have the same sign.
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, mut lo: f64, mut hi: f64, iters: usize) -> f64 {
    assert!(lo < hi, "invalid bracket [{lo}, {hi}]");
    let flo = f(lo);
    let fhi = f(hi);
    assert!(
        flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
        "f(lo)={flo} and f(hi)={fhi} do not bracket a root"
    );
    if flo == 0.0 {
        return lo;
    }
    if fhi == 0.0 {
        return hi;
    }
    let lo_negative = flo < 0.0;
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 {
            return mid;
        }
        if (fm < 0.0) == lo_negative {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// `ln(ln(n))` for integer populations, the recurring factor of the
/// paper's asymptotic orders.
///
/// # Panics
///
/// Panics if `n < 3` (where `ln ln n` would be non-positive and the
/// asymptotic formulas meaningless).
#[must_use]
pub fn ln_ln(n: usize) -> f64 {
    assert!(n >= 3, "ln ln n needs n >= 3, got {n}");
    (n as f64).ln().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn tolerant_ceil_behaviour() {
        assert_eq!(tolerant_ceil(4.0), 4);
        assert_eq!(tolerant_ceil(4.0 + 1e-12), 4);
        assert_eq!(tolerant_ceil(4.1), 5);
        assert_eq!(tolerant_ceil(PI / (PI / 6.0)), 6);
        assert_eq!(tolerant_ceil(0.5), 1);
    }

    #[test]
    fn tolerant_floor_behaviour() {
        assert_eq!(tolerant_floor(4.0), 4);
        assert_eq!(tolerant_floor(4.0 - 1e-12), 4);
        assert_eq!(tolerant_floor(3.9), 3);
        assert_eq!(tolerant_floor(2.0 * PI / (PI / 4.0)), 8);
    }

    #[test]
    fn one_minus_root_small_delta_no_cancellation() {
        // Exact asymptotics: 1 - (1-δ)^{1/k} ≈ δ/k for tiny δ.
        let delta = 1e-17;
        let k = 4;
        let got = one_minus_root_complement(delta, k);
        assert!((got - delta / k as f64).abs() / (delta / k as f64) < 1e-6);
        // Naive evaluation returns exactly 0 here (1 − 1e-17 rounds to 1):
        let naive = 1.0 - (1.0f64 - delta).powf(1.0 / k as f64);
        assert_eq!(naive, 0.0);
    }

    #[test]
    fn one_minus_root_moderate_delta_matches_naive() {
        let got = one_minus_root_complement(0.3, 3);
        let naive = 1.0 - 0.7f64.powf(1.0 / 3.0);
        assert!((got - naive).abs() < 1e-14);
    }

    #[test]
    fn one_minus_root_edges() {
        assert_eq!(one_minus_root_complement(0.0, 5), 0.0);
        assert_eq!(one_minus_root_complement(1.0, 5), 1.0);
        assert!((one_minus_root_complement(0.5, 1) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for lambda in [0.0, 0.5, 2.0, 10.0, 40.0] {
            let total: f64 = PoissonPmf::new(lambda).take(300).sum();
            assert!((total - 1.0).abs() < 1e-9, "λ={lambda}: {total}");
        }
    }

    #[test]
    fn poisson_pmf_known_values() {
        let pmf: Vec<f64> = PoissonPmf::new(2.0).take(4).collect();
        let e2 = (-2.0f64).exp();
        assert!((pmf[0] - e2).abs() < 1e-15);
        assert!((pmf[1] - 2.0 * e2).abs() < 1e-15);
        assert!((pmf[2] - 2.0 * e2).abs() < 1e-15);
        assert!((pmf[3] - 4.0 / 3.0 * e2).abs() < 1e-15);
    }

    #[test]
    fn poisson_pmf_mean() {
        let lambda = 7.5;
        let mean: f64 = PoissonPmf::new(lambda)
            .take(200)
            .enumerate()
            .map(|(k, p)| k as f64 * p)
            .sum();
        assert!((mean - lambda).abs() < 1e-9);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 80);
        assert!((root - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bisect_handles_decreasing_function() {
        let root = bisect(|x| 1.0 - x, 0.0, 5.0, 80);
        assert!((root - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "bracket")]
    fn bisect_rejects_unbracketed() {
        let _ = bisect(|x| x * x + 1.0, -1.0, 1.0, 10);
    }

    #[test]
    fn ln_ln_values() {
        assert!((ln_ln(3) - (3f64).ln().ln()).abs() < 1e-15);
        assert!(ln_ln(1000) > 0.0);
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn ln_ln_small_n_panics() {
        let _ = ln_ln(2);
    }
}
