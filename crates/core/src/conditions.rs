//! The geometric necessary and sufficient conditions (§III, §IV).
//!
//! Both conditions partition the directions around a point `P` into closed
//! sectors and require a covering camera to be *located* in each sector
//! (equivalently: each sector must contain a viewed direction):
//!
//! * **necessary** (§III, Fig. 4): `⌊π/θ⌋` sectors of width `2θ` swept
//!   from the start line, plus — when `2θ` does not divide `2π` — one
//!   extra sector of width `2θ` whose bisector is the bisector of the
//!   leftover wedge `T_α`. If any sector is empty, its bisector is an
//!   unsafe facing direction, so full-view coverage fails.
//! * **sufficient** (§IV, Fig. 6): `⌊2π/θ⌋` sectors of width `θ` plus the
//!   analogous extra sector. If every sector holds a viewed direction,
//!   every facing direction is within `θ` of one of them, so full-view
//!   coverage holds.

use crate::fullview::PointCoverage;
use crate::numeric::tolerant_floor;
use crate::theta::EffectiveAngle;
use fullview_geom::Point;
use fullview_geom::{Angle, Arc, ANGLE_EPS};
use fullview_model::CameraNetwork;
use std::f64::consts::TAU;

/// The sector partition used by one of the paper's two geometric
/// conditions: a list of closed arcs, each of which must contain at least
/// one viewed direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SectorPartition {
    sectors: Vec<Arc>,
    kind: ConditionKind,
}

/// Which geometric condition a partition encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionKind {
    /// §III construction: sectors of width `2θ`.
    Necessary,
    /// §IV construction: sectors of width `θ`.
    Sufficient,
}

impl SectorPartition {
    /// Builds the §III *necessary*-condition partition for effective angle
    /// `theta`, sweeping counter-clockwise from `start_line` (the paper's
    /// dashed radius `r_P`; the construction's validity does not depend on
    /// its choice, which the `conditions` property tests exercise).
    #[must_use]
    pub fn necessary(theta: EffectiveAngle, start_line: Angle) -> Self {
        SectorPartition {
            sectors: build_sectors(2.0 * theta.radians(), start_line),
            kind: ConditionKind::Necessary,
        }
    }

    /// Builds the §IV *sufficient*-condition partition (sector width `θ`).
    #[must_use]
    pub fn sufficient(theta: EffectiveAngle, start_line: Angle) -> Self {
        SectorPartition {
            sectors: build_sectors(theta.radians(), start_line),
            kind: ConditionKind::Sufficient,
        }
    }

    /// The partition's sectors.
    #[must_use]
    pub fn sectors(&self) -> &[Arc] {
        &self.sectors
    }

    /// Which condition this partition encodes.
    #[must_use]
    pub fn kind(&self) -> ConditionKind {
        self.kind
    }

    /// Whether every sector contains at least one of `directions`
    /// (plus `colocated` granting all sectors at once — a camera at the
    /// point itself can be "in" any sector).
    #[must_use]
    pub fn is_satisfied_by(&self, directions: &[Angle], colocated: bool) -> bool {
        if colocated {
            return true;
        }
        self.sectors
            .iter()
            .all(|s| directions.iter().any(|d| s.contains(*d)))
    }

    /// Evaluates the partition against an analysed point.
    #[must_use]
    pub fn is_satisfied(&self, coverage: &PointCoverage) -> bool {
        self.is_satisfied_by(&coverage.viewed_directions, coverage.has_colocated_camera)
    }

    /// Evaluates the partition against a borrowed analysis — the form the
    /// tile-engine sweeps hand to their callbacks (see
    /// [`sweep_grid`](crate::sweep_grid)).
    #[must_use]
    pub fn is_satisfied_view(&self, view: &crate::fullview::CoverageView<'_>) -> bool {
        self.is_satisfied_by(view.viewed_directions, view.has_colocated_camera)
    }
}

/// The common §III/§IV construction: `⌊2π/w⌋` sectors of width `w` swept
/// from `start`, plus — if a leftover wedge `T_α` of width `α ∈ (0, w)`
/// remains — an extra sector of width `w` sharing `T_α`'s bisector.
fn build_sectors(width: f64, start: Angle) -> Vec<Arc> {
    debug_assert!(width > 0.0 && width <= TAU + ANGLE_EPS);
    let width = width.min(TAU);
    let k = tolerant_floor(TAU / width);
    let mut sectors = Vec::with_capacity(k + 1);
    for j in 0..k {
        sectors.push(Arc::new(start.rotate(j as f64 * width), width));
    }
    let alpha = TAU - k as f64 * width;
    if alpha > ANGLE_EPS {
        // Bisector of the leftover wedge [k·w, 2π) (relative to start).
        let bisector = start.rotate(k as f64 * width + alpha / 2.0);
        sectors.push(Arc::centered(bisector, width / 2.0));
    }
    sectors
}

/// Whether `point` meets the §III **necessary** condition of full-view
/// coverage in `net`: every `2θ`-sector around it (swept from
/// `start_line`) contains a covering camera.
///
/// Full-view coverage implies this condition; the converse fails (Fig. 9,
/// left). With `θ = π` the condition degenerates to 1-coverage (§VII-A).
#[must_use]
pub fn meets_necessary_condition(
    net: &CameraNetwork,
    point: Point,
    theta: EffectiveAngle,
    start_line: Angle,
) -> bool {
    let mut analyzer = crate::fullview::PointAnalyzer::new();
    let view = analyzer.analyze_point_into(net, point);
    SectorPartition::necessary(theta, start_line).is_satisfied_view(&view)
}

/// Whether `point` meets the §IV **sufficient** condition of full-view
/// coverage in `net`: every `θ`-sector around it contains a covering
/// camera.
///
/// This condition implies full-view coverage; the converse fails (Fig. 9,
/// right — close camera pairs make one of them redundant).
#[must_use]
pub fn meets_sufficient_condition(
    net: &CameraNetwork,
    point: Point,
    theta: EffectiveAngle,
    start_line: Angle,
) -> bool {
    let mut analyzer = crate::fullview::PointAnalyzer::new();
    let view = analyzer.analyze_point_into(net, point);
    SectorPartition::sufficient(theta, start_line).is_satisfied_view(&view)
}

/// Minimum number of cameras full-view coverage demands: `⌈π/θ⌉`
/// (§III: "at least `⌈π/θ⌉` sensors are needed to achieve full view
/// coverage of a point" — using the corrected sector count, see
/// DESIGN.md).
///
/// Derivation: with `c` covering cameras the circular gaps between viewed
/// directions sum to `2π` and each must be at most `2θ`, so `c ≥ π/θ`.
/// Note the bound follows from full-view coverage itself; the
/// sector-occupancy form of the necessary condition can be met by fewer
/// cameras when `θ > π/2` makes the overlap sector intersect sector 1.
#[must_use]
pub fn min_cameras_necessary(theta: EffectiveAngle) -> usize {
    theta.necessary_sector_count()
}

/// Number of cameras that *suffice* when ideally placed: `⌈2π/θ⌉` (§IV).
#[must_use]
pub fn cameras_sufficient(theta: EffectiveAngle) -> usize {
    theta.sufficient_sector_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Torus;
    use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    fn angles(v: &[f64]) -> Vec<Angle> {
        v.iter().map(|&a| Angle::new(a)).collect()
    }

    #[test]
    fn necessary_partition_exact_division() {
        // θ = π/4: four sectors of width π/2, no extra.
        let p = SectorPartition::necessary(theta(PI / 4.0), Angle::ZERO);
        assert_eq!(p.sectors().len(), 4);
        let total: f64 = p.sectors().iter().map(Arc::width).sum();
        assert!((total - TAU).abs() < 1e-9);
    }

    #[test]
    fn necessary_partition_with_remainder() {
        // θ = 0.3π: 2θ = 0.6π, ⌊2π/0.6π⌋ = 3 sectors + extra = 4 = ⌈π/θ⌉.
        let th = theta(0.3 * PI);
        let p = SectorPartition::necessary(th, Angle::ZERO);
        assert_eq!(p.sectors().len(), th.necessary_sector_count());
        assert_eq!(p.sectors().len(), 4);
        // Extra sector bisector = bisector of the leftover [1.8π, 2π).
        let extra = p.sectors()[3];
        assert!(extra.bisector().approx_eq(Angle::new(1.9 * PI)));
        assert!((extra.width() - 0.6 * PI).abs() < 1e-12);
    }

    #[test]
    fn sufficient_partition_counts() {
        let th = theta(0.3 * PI);
        let p = SectorPartition::sufficient(th, Angle::ZERO);
        assert_eq!(p.sectors().len(), th.sufficient_sector_count());
        assert_eq!(p.sectors().len(), 7); // ⌈2π/0.3π⌉ = ⌈6.67⌉
    }

    #[test]
    fn theta_pi_necessary_is_single_full_sector() {
        let p = SectorPartition::necessary(theta(PI), Angle::new(1.0));
        assert_eq!(p.sectors().len(), 1);
        assert!(p.sectors()[0].is_full_circle());
        // Any single direction satisfies it — 1-coverage (§VII-A).
        assert!(p.is_satisfied_by(&angles(&[2.0]), false));
        assert!(!p.is_satisfied_by(&[], false));
    }

    #[test]
    fn satisfaction_requires_every_sector() {
        let th = theta(PI / 4.0);
        let p = SectorPartition::necessary(th, Angle::ZERO);
        // Directions in sectors 0, 1, 2 only (missing [1.5π, 2π)).
        assert!(!p.is_satisfied_by(&angles(&[0.1, 1.7, 3.2]), false));
        assert!(p.is_satisfied_by(&angles(&[0.1, 1.7, 3.2, 5.0]), false));
    }

    #[test]
    fn colocated_satisfies_everything() {
        let p = SectorPartition::sufficient(theta(0.1), Angle::ZERO);
        assert!(p.is_satisfied_by(&[], true));
    }

    #[test]
    fn boundary_direction_counts_for_both_adjacent_sectors() {
        let th = theta(PI / 4.0);
        let p = SectorPartition::necessary(th, Angle::ZERO);
        // A direction exactly on the boundary π/2 belongs to sectors 0 and 1
        // (closed sectors), so 3 remaining directions can finish the job.
        let dirs = angles(&[PI / 2.0, PI + 0.1, 1.6 * PI, 0.2]);
        assert!(p.is_satisfied_by(&dirs, false));
    }

    #[test]
    fn rotating_start_line_changes_verdict_possibly() {
        // The *condition* is defined relative to a start line; an uneven
        // direction set can pass for one start line and fail for another —
        // that is exactly why the necessary condition is not sufficient.
        let th = theta(PI / 2.0);
        // Necessary partition: sectors [0, π) and [π, 2π).
        let p0 = SectorPartition::necessary(th, Angle::ZERO);
        let dirs = angles(&[0.1, PI - 0.1]);
        assert!(!p0.is_satisfied_by(&dirs, false)); // both in [0, π)
        let p_rot = SectorPartition::necessary(th, Angle::new(PI / 2.0));
        assert!(p_rot.is_satisfied_by(&dirs, false)); // now split across sectors
    }

    // --- end-to-end against a network ---

    fn ring(target: Point, dirs: &[f64]) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let cams: Vec<Camera> = dirs
            .iter()
            .map(|&d| {
                let dir = Angle::new(d);
                Camera::new(
                    torus.offset(target, dir, 0.1),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn network_conditions_and_fullview_sandwich() {
        let p = Point::new(0.5, 0.5);
        let th = theta(PI / 4.0);
        // 8 evenly spaced cameras: sufficient condition holds.
        let dirs: Vec<f64> = (0..8).map(|i| i as f64 * TAU / 8.0 + 0.05).collect();
        let net = ring(p, &dirs);
        assert!(meets_sufficient_condition(&net, p, th, Angle::ZERO));
        assert!(crate::fullview::is_full_view_covered(&net, p, th));
        assert!(meets_necessary_condition(&net, p, th, Angle::ZERO));

        // 4 cameras at sector bisectors: necessary holds (one per 2θ-sector),
        // but gaps are π/2 = 2θ — full-view *just* holds (closed condition);
        // push one camera to create a wide gap: necessary may still hold but
        // full-view fails.
        let dirs = [0.4, PI / 2.0 + 0.4, PI + 0.4, 1.5 * PI + 1.2];
        let net = ring(p, &dirs);
        assert!(meets_necessary_condition(&net, p, th, Angle::ZERO));
        assert!(!crate::fullview::is_full_view_covered(&net, p, th));
        assert!(!meets_sufficient_condition(&net, p, th, Angle::ZERO));
    }

    #[test]
    fn counts_helpers() {
        let th = theta(PI / 4.0);
        assert_eq!(min_cameras_necessary(th), 4);
        assert_eq!(cameras_sufficient(th), 8);
    }
}
