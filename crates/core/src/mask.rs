//! The bit-packed sector-mask kernel: stage 1 of the two-stage per-point
//! analysis engine.
//!
//! Every dense-grid consumer ultimately asks, per grid point, some subset
//! of five predicates (covered, k-covered, necessary, full-view,
//! sufficient). The exact path answers them by gathering covering
//! cameras, sorting viewed directions, and scanning gaps
//! ([`PointAnalyzer`](crate::PointAnalyzer)) — `O(c log c)` of branchy
//! trigonometry per point. But the paper's §IV sufficient condition is a
//! *sector occupancy* predicate: if every one of the `⌈2π/θ⌉` closed
//! θ-sectors around a point contains a viewed direction, the point is
//! full-view covered. Occupancy is just an OR of bits.
//!
//! The kernel therefore screens whole tiles at once:
//!
//! 1. **Factorized distance prefilter.** For one candidate camera and one
//!    tile, the torus displacement factorizes per axis: wrap each grid
//!    column's `Δx` and each row's `Δy` once
//!    ([`Torus::wrap_coord_delta`]), and every `(column, row)` pair's
//!    squared distance is `Δx² + Δy²` — bit-identical to the
//!    [`TileCursor`](fullview_model::TileCursor) prefilter and to
//!    `Sector::contains`, which evaluate the exact same float
//!    expressions (Rust never contracts `a*a + b*b` into an FMA).
//! 2. **Conservative angular classifier.** The sector test
//!    `facing.distance(dir) ≤ φ/2 + ε` is decided without `atan2` via the
//!    dot product `a = u⃗·d⃗ = |d|·cos ∠(u⃗, d⃗)`: with `c = cos(φ/2 + ε)`,
//!    coverage is `a ≥ c·|d|`, decidable by sign tests and one squared
//!    comparison. Verdicts within a relative band of `1e-12` (vastly
//!    wider than the ~1e-15 evaluation error of either formulation) are
//!    declared *uncertain* instead of guessed, so every certain verdict
//!    matches the exact code path bit for bit.
//! 3. **Sector masks.** Each certain covering camera's viewed direction
//!    is ORed into per-point `u64` occupancy masks for the §IV
//!    (sufficient, width θ) and §III (necessary, width 2θ) partitions —
//!    one word per point for up to 64 sectors, a small multi-word layout
//!    beyond. Membership bits are set with the real [`Arc::contains`] on
//!    the real [`Angle::from_vector`] direction, so a set bit means
//!    exactly what the exact path would have computed; the wedge index
//!    only *narrows which* sectors are tested (a proven 3-candidate
//!    superset per partition).
//!
//! A point whose camera verdicts were all certain is **decided** when it
//! has no covering camera (all five predicates false) or when its
//! sufficient mask is all-ones (full-view by §IV — see DESIGN.md for the
//! ε-budget proof that the code-level predicates agree, not just the
//! ideal geometry). Everything else — boundary-band verdicts, colocated
//! candidates, points in the necessary-but-not-sufficient indeterminate
//! band — falls through to the exact sort+gap analyzer, which remains
//! the single source of truth. The differential tests in `densegrid.rs`,
//! `engine.rs` and `tests/properties.rs` pin the bit-identity.

use crate::conditions::SectorPartition;
use crate::numeric::tolerant_floor;
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, Arc, Point, Torus, UnitGrid, ANGLE_EPS};
use fullview_model::{Camera, CameraNetwork, TileCursor};
use std::f64::consts::{PI, TAU};

use crate::engine::GridTiling;

/// Most sectors a partition may have for the kernel to engage: 256 keeps
/// the multi-word masks at ≤ 4 words per point and — because it implies
/// `θ ≥ 2π/257` — guarantees the 3-candidate wedge lookup is exhaustive
/// (index arithmetic error is ≪ 1 sector for any width this large).
const MAX_SECTORS: usize = 256;

/// Squared-distance floor below which a candidate is treated as possibly
/// colocated with the point. `Angle::from_vector` returns `None` iff
/// `hypot(dx, dy) < ANGLE_EPS = 1e-9`, i.e. only when `d² < 1e-18`;
/// requiring `d² ≥ 4e-18` (hypot ≥ 2e-9, which is monotone and exact to
/// ulps) proves `from_vector` is `Some` for both the forward and the
/// reversed displacement. Below the floor the point is marked uncertain.
const D2_COLOCATED: f64 = 4e-18;

/// Relative half-width of the uncertainty band around the angular
/// boundary. Both the exact path (`atan2` + distance) and the kernel
/// (dot product + squared compare) evaluate their predicates to within a
/// few ulps (≲ 1e-15 relative); any input whose true margin exceeds this
/// band gets the same verdict from both, so certain kernel verdicts are
/// bit-identical to the exact path.
const ANG_BAND: f64 = 1e-12;

/// Stage-1 verdict for one tile point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointVerdict {
    /// Some camera verdict was uncertain, or the point sits in the
    /// indeterminate band (covered but not sufficient-mask-complete):
    /// the exact analyzer must decide it.
    Undecided,
    /// Every camera verdict was certain and the masks decide the point.
    Decided {
        /// Exact covering-camera count (equals the exact path's
        /// `covering_cameras`).
        count: u32,
        /// Whether every §IV θ-sector holds a viewed direction
        /// (⇒ full-view covered; `false` here only with `count == 0`).
        suf_full: bool,
        /// Whether every §III 2θ-sector holds a viewed direction.
        nec_full: bool,
    },
}

/// What the kernel computes for a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenMode {
    /// Occupancy masks for both partitions plus exact counts — feeds the
    /// five-predicate report sweeps.
    Report,
    /// Strict per-sector depth counters (saturating at `k`) plus exact
    /// counts — feeds the k-full-view screen.
    Depth {
        /// The multiplicity threshold being screened for (`1..=255`).
        k: u8,
    },
}

/// Running totals of stage-1 outcomes, for the measured screen rate
/// reported in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Points decided by the mask screen alone.
    pub screened: u64,
    /// Points that fell through to the exact analyzer.
    pub exact: u64,
}

impl ScreenStats {
    /// Fraction of points decided without the exact fallback (`1.0` when
    /// nothing was evaluated).
    #[must_use]
    pub fn screen_rate(&self) -> f64 {
        let total = self.screened + self.exact;
        if total == 0 {
            1.0
        } else {
            self.screened as f64 / total as f64
        }
    }
}

/// Geometry of one sector partition, preprocessed for O(1) candidate
/// lookup: the `k_main` equal-width main sectors start at
/// `start + j·width`, so a direction's wedge index brackets the only
/// main sectors that can contain it; the extra (wedge) sector, when
/// present, is always tested.
#[derive(Debug, Clone)]
struct PartitionGeom {
    /// The partition's closed sectors, exactly as
    /// [`SectorPartition::sectors`] builds them.
    sectors: Vec<Arc>,
    /// Start line of main sector 0.
    start: Angle,
    /// `1 / width` of the main sectors.
    inv_width: f64,
    /// Number of equal-width main sectors.
    k_main: usize,
    /// Mask words per point (`⌈sectors.len() / 64⌉`).
    words: usize,
    /// The all-occupied mask, one entry per word.
    full: Vec<u64>,
}

impl PartitionGeom {
    fn new(partition: &SectorPartition) -> Self {
        let sectors = partition.sectors().to_vec();
        let width = sectors[0].width();
        let k_main = tolerant_floor(TAU / width);
        debug_assert!(sectors.len() == k_main || sectors.len() == k_main + 1);
        let n = sectors.len();
        let words = n.div_ceil(64);
        let mut full = vec![u64::MAX; words];
        let tail = n % 64;
        if tail != 0 {
            full[words - 1] = (1u64 << tail) - 1;
        }
        PartitionGeom {
            start: sectors[0].start(),
            inv_width: 1.0 / width,
            k_main,
            words,
            full,
            sectors,
        }
    }

    /// The three main-sector candidates for direction `d` (the wedge
    /// index and its neighbours, wrapped). Exhaustive for any main
    /// sector that `Arc::contains(d)` with its `ANGLE_EPS` slack: the
    /// slack plus index-arithmetic error is ≪ one sector width under the
    /// [`MAX_SECTORS`] gate, so a containing sector's index is within 1
    /// of the wedge index (mod `k_main`, which also covers the seam).
    #[inline]
    fn candidates(&self, d: Angle) -> [usize; 3] {
        let delta = self.start.ccw_delta(d);
        let j0 = ((delta * self.inv_width) as usize).min(self.k_main - 1);
        [
            j0,
            (j0 + 1) % self.k_main,
            (j0 + self.k_main - 1) % self.k_main,
        ]
    }

    /// ORs `d`'s sector memberships into `mask` (slack semantics — the
    /// real `Arc::contains`). Returns whether the mask is now full.
    #[inline]
    fn note_direction(&self, d: Angle, mask: &mut [u64]) -> bool {
        let [a, b, c] = self.candidates(d);
        for j in [a, b, c] {
            // Duplicate candidates (tiny k_main) re-OR the same bit: harmless.
            if self.sectors[j].contains(d) {
                mask[j / 64] |= 1u64 << (j % 64);
            }
        }
        if self.sectors.len() > self.k_main && self.sectors[self.k_main].contains(d) {
            let j = self.k_main;
            mask[j / 64] |= 1u64 << (j % 64);
        }
        mask == self.full
    }

    /// Bumps `d`'s **strict**-membership depth counters (no `ANGLE_EPS`
    /// slack), saturating at `sat`. Strictness is what makes "every
    /// sector at depth ≥ k" imply view multiplicity ≥ k: two directions
    /// strictly inside the same closed θ-sector are within θ of each
    /// other, so each lies in the other's counting window (whose lower
    /// edge even extends `2·ANGLE_EPS` below `−θ`), whereas a
    /// slack-contained direction can sit just outside the window.
    #[inline]
    fn note_direction_strict(&self, d: Angle, depths: &mut [u8], sat: u8) {
        let [a, b, c] = self.candidates(d);
        let mut prev = usize::MAX;
        let mut prev2 = usize::MAX;
        for j in [a, b, c] {
            if j == prev || j == prev2 {
                continue; // dedup: depths must count each direction once
            }
            let arc = &self.sectors[j];
            if arc.start().ccw_delta(d) <= arc.width() && depths[j] < sat {
                depths[j] += 1;
            }
            prev2 = prev;
            prev = j;
        }
        if self.sectors.len() > self.k_main {
            let j = self.k_main;
            let arc = &self.sectors[j];
            if arc.start().ccw_delta(d) <= arc.width() && depths[j] < sat {
                depths[j] += 1;
            }
        }
    }

    fn n_sectors(&self) -> usize {
        self.sectors.len()
    }
}

/// How one candidate camera's angular test is decided without `atan2`.
///
/// With `T = φ/2 + ANGLE_EPS` and `u⃗` the orientation unit vector, the
/// exact test `∠(u⃗, d⃗) ≤ T` is `cos ∠ ≥ cos T` (both sides in `[0, π]`),
/// i.e. `a ≥ cos T · |d⃗|` with `a = u⃗·d⃗`.
#[derive(Debug, Clone, Copy)]
enum AngClass {
    /// `φ` is a disc (or `T ≥ π`): in-radius implies covered.
    All,
    /// `|cos T| ≤ 1e-4` (φ ≈ π): the squared comparison loses too much
    /// precision near `cos T ≈ 0`, so compare against `cos T·√d²`.
    Sqrt { cos_t: f64 },
    /// `cos T > 1e-4` (narrow sector): `a ≤ 0` is certainly out;
    /// otherwise covered ⇔ `a² ≥ cos²T·d²`.
    Narrow { c2: f64 },
    /// `cos T < −1e-4` (wide sector): `a ≥ 0` is certainly in;
    /// otherwise covered ⇔ `a² ≤ cos²T·d²` (both sides negative, the
    /// inequality flips under squaring).
    Wide { c2: f64 },
}

/// One candidate camera's precomputed per-tile state.
#[derive(Debug, Clone, Copy)]
struct CamClass {
    ux: f64,
    uy: f64,
    class: AngClass,
}

fn classify(cam: &Camera) -> CamClass {
    let width = cam.spec().angle_of_view();
    let (ux, uy) = cam.orientation().unit_vector();
    let is_disc = width >= TAU - ANGLE_EPS;
    let t = width / 2.0 + ANGLE_EPS;
    let class = if is_disc || t >= PI {
        // Angular distance never exceeds π, so T ≥ π is vacuously met.
        AngClass::All
    } else {
        let cos_t = t.cos();
        if cos_t.abs() <= 1e-4 {
            AngClass::Sqrt { cos_t }
        } else if cos_t > 0.0 {
            AngClass::Narrow { c2: cos_t * cos_t }
        } else {
            AngClass::Wide { c2: cos_t * cos_t }
        }
    };
    CamClass { ux, uy, class }
}

/// The angular verdict for one (camera, point) pair: `Some(covered)`
/// when certain, `None` inside the uncertainty band.
#[inline]
fn angular_verdict(cc: &CamClass, fdx: f64, fdy: f64, d2: f64) -> Option<bool> {
    let a = cc.ux * fdx + cc.uy * fdy;
    match cc.class {
        AngClass::All => Some(true),
        AngClass::Sqrt { cos_t } => {
            let s = d2.sqrt();
            let rhs = cos_t * s;
            if (a - rhs).abs() <= ANG_BAND * s {
                None
            } else {
                Some(a >= rhs)
            }
        }
        AngClass::Narrow { c2 } => {
            if a <= 0.0 {
                return Some(false);
            }
            let (aa, rhs) = (a * a, c2 * d2);
            if (aa - rhs).abs() <= ANG_BAND * d2 {
                None
            } else {
                Some(aa >= rhs)
            }
        }
        AngClass::Wide { c2 } => {
            if a >= 0.0 {
                return Some(true);
            }
            let (aa, rhs) = (a * a, c2 * d2);
            if (aa - rhs).abs() <= ANG_BAND * d2 {
                None
            } else {
                Some(aa <= rhs)
            }
        }
    }
}

/// The sector-mask screening kernel for one `(θ, start_line)`
/// configuration. Reusable across tiles; all scratch is retained, so a
/// warmed kernel allocates nothing.
#[derive(Debug, Clone)]
pub struct SectorMaskKernel {
    suf: PartitionGeom,
    nec: PartitionGeom,
    // Per-tile scratch, laid out per point in for_each_point_in_tile
    // order (rows outer, columns inner).
    xs: Vec<f64>,
    ys: Vec<f64>,
    fdx: Vec<f64>,
    fdx2: Vec<f64>,
    rdx: Vec<f64>,
    fdy: Vec<f64>,
    fdy2: Vec<f64>,
    rdy: Vec<f64>,
    counts: Vec<u32>,
    uncertain: Vec<bool>,
    done: Vec<bool>,
    suf_masks: Vec<u64>,
    nec_masks: Vec<u64>,
    depths: Vec<u8>,
    points: usize,
    mode: ScreenMode,
}

impl SectorMaskKernel {
    /// Whether the kernel supports `theta` — partitions small enough for
    /// the packed masks and the candidate lookup proof.
    #[must_use]
    pub fn supported(theta: EffectiveAngle) -> bool {
        theta.sufficient_sector_count() <= MAX_SECTORS
    }

    /// Builds the kernel, or `None` when `theta` is below the supported
    /// range (callers then stay on the exact path wholesale).
    #[must_use]
    pub fn new(theta: EffectiveAngle, start_line: Angle) -> Option<Self> {
        if !Self::supported(theta) {
            return None;
        }
        Some(SectorMaskKernel {
            suf: PartitionGeom::new(&SectorPartition::sufficient(theta, start_line)),
            nec: PartitionGeom::new(&SectorPartition::necessary(theta, start_line)),
            xs: Vec::new(),
            ys: Vec::new(),
            fdx: Vec::new(),
            fdx2: Vec::new(),
            rdx: Vec::new(),
            fdy: Vec::new(),
            fdy2: Vec::new(),
            rdy: Vec::new(),
            counts: Vec::new(),
            uncertain: Vec::new(),
            done: Vec::new(),
            suf_masks: Vec::new(),
            nec_masks: Vec::new(),
            depths: Vec::new(),
            points: 0,
            mode: ScreenMode::Report,
        })
    }

    /// Screens tile `t` through `cursor`'s pinned candidate snapshot
    /// (the cursor **must** be pinned to `t`'s cell). Afterwards
    /// [`verdict`](Self::verdict) / [`k_verdict`](Self::k_verdict)
    /// answer per point, indexed in `for_each_point_in_tile` order.
    ///
    /// # Panics
    ///
    /// Panics if the tile is empty or the tiling does not match `grid`.
    pub fn screen_tile(
        &mut self,
        cursor: &TileCursor<'_>,
        tiling: &GridTiling,
        grid: &UnitGrid,
        t: usize,
        mode: ScreenMode,
    ) {
        let cols = tiling.tile_col_range(t);
        let rows = tiling.tile_row_range(t);
        let (ncols, nrows) = (cols.len(), rows.len());
        assert!(ncols > 0 && nrows > 0, "cannot screen an empty tile");
        assert_eq!(tiling.grid_len(), grid.len(), "tiling does not match grid");
        let side = grid.side_count();
        let n = ncols * nrows;
        self.points = n;
        self.mode = mode;

        // Column x / row y coordinates, bit-identical to grid.point():
        // a lattice point's x depends only on its column, y on its row.
        self.xs.clear();
        self.xs
            .extend(cols.clone().map(|i| grid.point(rows.start * side + i).x));
        self.ys.splice(
            ..,
            rows.clone().map(|j| grid.point(j * side + cols.start).y),
        );

        self.counts.clear();
        self.counts.resize(n, 0);
        self.uncertain.clear();
        self.uncertain.resize(n, false);
        self.done.clear();
        self.done.resize(n, false);
        let sat = match mode {
            ScreenMode::Report => {
                self.suf_masks.clear();
                self.suf_masks.resize(n * self.suf.words, 0);
                self.nec_masks.clear();
                self.nec_masks.resize(n * self.nec.words, 0);
                0u8
            }
            ScreenMode::Depth { k } => {
                self.depths.clear();
                self.depths.resize(n * self.suf.n_sectors(), 0);
                k
            }
        };

        let net = cursor.network();
        let torus = *net.torus();
        let cameras = net.cameras();
        for pc in cursor.pinned_candidates() {
            let cam = &cameras[pc.index()];
            let pos = pc.position();
            let cpos = cam.position();
            if cpos.x.to_bits() != pos.x.to_bits() || cpos.y.to_bits() != pos.y.to_bits() {
                // The pinned snapshot position (from the spatial index)
                // is not bit-equal to the camera's own — the factorized
                // prefilter would not reproduce `Sector::contains`'
                // displacement. Rare; replicate the cursor per point.
                self.exact_camera(&torus, pc.position(), pc.radius_sq(), cam, ncols, sat);
                continue;
            }
            let r2 = pc.radius_sq();
            self.fdx.clear();
            self.fdx2.clear();
            self.rdx.clear();
            for &x in &self.xs {
                let d = torus.wrap_coord_delta(x - pos.x);
                self.fdx.push(d);
                self.fdx2.push(d * d);
                self.rdx.push(torus.wrap_coord_delta(pos.x - x));
            }
            self.fdy.clear();
            self.fdy2.clear();
            self.rdy.clear();
            for &y in &self.ys {
                let d = torus.wrap_coord_delta(y - pos.y);
                self.fdy.push(d);
                self.fdy2.push(d * d);
                self.rdy.push(torus.wrap_coord_delta(pos.y - y));
            }
            // Monotonicity of correctly-rounded f64 addition lets whole
            // rows (or the camera) be skipped when even the nearest
            // column cannot pass `d² ≤ r²`.
            let min_fdx2 = self.fdx2.iter().copied().fold(f64::INFINITY, f64::min);
            let min_fdy2 = self.fdy2.iter().copied().fold(f64::INFINITY, f64::min);
            if min_fdx2 + min_fdy2 > r2 {
                continue;
            }
            let cc = classify(cam);
            for rj in 0..nrows {
                let fy2 = self.fdy2[rj];
                if fy2 + min_fdx2 > r2 {
                    continue;
                }
                let base = rj * ncols;
                for ci in 0..ncols {
                    let d2 = self.fdx2[ci] + fy2;
                    if d2 > r2 {
                        continue;
                    }
                    let local = base + ci;
                    if d2 < D2_COLOCATED {
                        self.uncertain[local] = true;
                        continue;
                    }
                    let covered = match angular_verdict(&cc, self.fdx[ci], self.fdy[rj], d2) {
                        Some(c) => c,
                        None => {
                            self.uncertain[local] = true;
                            continue;
                        }
                    };
                    if !covered {
                        continue;
                    }
                    self.counts[local] += 1;
                    if self.done[local] {
                        continue;
                    }
                    // d² ≥ D2_COLOCATED proves from_vector is Some; the
                    // unwrap-to-uncertain is belt-and-braces.
                    let Some(rd) = Angle::from_vector(self.rdx[ci], self.rdy[rj]) else {
                        self.uncertain[local] = true;
                        continue;
                    };
                    match mode {
                        ScreenMode::Report => {
                            let sw = self.suf.words;
                            let nw = self.nec.words;
                            let sfull = self
                                .suf
                                .note_direction(rd, &mut self.suf_masks[local * sw..][..sw]);
                            let nfull = self
                                .nec
                                .note_direction(rd, &mut self.nec_masks[local * nw..][..nw]);
                            self.done[local] = sfull && nfull;
                        }
                        ScreenMode::Depth { k } => {
                            let ns = self.suf.n_sectors();
                            self.suf.note_direction_strict(
                                rd,
                                &mut self.depths[local * ns..][..ns],
                                k,
                            );
                            self.done[local] =
                                self.depths[local * ns..][..ns].iter().all(|&d| d >= k);
                        }
                    }
                }
            }
        }
    }

    /// Per-candidate fallback when the pinned position is not bit-equal
    /// to the camera's: replicate the cursor's per-point semantics
    /// (prefilter on the pinned position, exact `covers`, direction from
    /// the camera's own position) for this one camera.
    fn exact_camera(
        &mut self,
        torus: &Torus,
        pin_pos: Point,
        radius_sq: f64,
        cam: &Camera,
        ncols: usize,
        sat: u8,
    ) {
        for (rj, &y) in self.ys.iter().enumerate() {
            for (ci, &x) in self.xs.iter().enumerate() {
                let p = Point::new(x, y);
                if torus.distance_squared(pin_pos, p) > radius_sq || !cam.covers(torus, p) {
                    continue;
                }
                let local = rj * ncols + ci;
                self.counts[local] += 1;
                let Some(rd) = cam.viewed_direction(torus, p) else {
                    self.uncertain[local] = true;
                    continue;
                };
                if self.done[local] {
                    continue;
                }
                match self.mode {
                    ScreenMode::Report => {
                        let sw = self.suf.words;
                        let nw = self.nec.words;
                        let sfull = self
                            .suf
                            .note_direction(rd, &mut self.suf_masks[local * sw..][..sw]);
                        let nfull = self
                            .nec
                            .note_direction(rd, &mut self.nec_masks[local * nw..][..nw]);
                        self.done[local] = sfull && nfull;
                    }
                    ScreenMode::Depth { k: _ } => {
                        let ns = self.suf.n_sectors();
                        self.suf.note_direction_strict(
                            rd,
                            &mut self.depths[local * ns..][..ns],
                            sat,
                        );
                        self.done[local] =
                            self.depths[local * ns..][..ns].iter().all(|&d| d >= sat);
                    }
                }
            }
        }
    }

    /// The stage-1 verdict for tile-local point `local` after a
    /// [`ScreenMode::Report`] screen.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range for the screened tile or the
    /// last screen was not `Report`.
    #[must_use]
    pub fn verdict(&self, local: usize) -> PointVerdict {
        assert!(local < self.points, "point {local} not in screened tile");
        assert_eq!(self.mode, ScreenMode::Report, "screened in Depth mode");
        if self.uncertain[local] {
            return PointVerdict::Undecided;
        }
        let count = self.counts[local];
        let sw = self.suf.words;
        let suf_full = &self.suf_masks[local * sw..][..sw] == self.suf.full.as_slice();
        if count > 0 && !suf_full {
            // Covered but not provably full-view: the §III/§IV
            // indeterminate band. Only the exact gap scan can decide.
            return PointVerdict::Undecided;
        }
        let nw = self.nec.words;
        let nec_full = &self.nec_masks[local * nw..][..nw] == self.nec.full.as_slice();
        PointVerdict::Decided {
            count,
            suf_full,
            nec_full,
        }
    }

    /// The k-full-view screen for tile-local point `local` after a
    /// [`ScreenMode::Depth`] screen with the same `k`: `Some(true)` when
    /// every strict sector depth reached `k` (view multiplicity ≥ k),
    /// `Some(false)` when fewer than `k` cameras cover the point at all,
    /// `None` when only the exact depth sweep can decide.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range or the last screen was not
    /// `Depth` with this `k`.
    #[must_use]
    pub fn k_verdict(&self, local: usize, k: u8) -> Option<bool> {
        assert!(local < self.points, "point {local} not in screened tile");
        assert_eq!(self.mode, ScreenMode::Depth { k }, "mode/k mismatch");
        if self.uncertain[local] {
            return None;
        }
        if self.counts[local] < u32::from(k) {
            // Multiplicity ≤ direction count < k.
            return Some(false);
        }
        let ns = self.suf.n_sectors();
        if self.depths[local * ns..][..ns].iter().all(|&d| d >= k) {
            // Every facing direction lies strictly within some θ-sector,
            // whose ≥ k strict members are all within θ of it.
            return Some(true);
        }
        None
    }
}

/// Counts the points of `lo..hi` with view multiplicity ≥ `k` using the
/// depth screen, falling back to the exact sweep per point (or wholesale
/// when the kernel cannot engage). Bit-identical to the exact
/// [`count_k_view_range`](crate::count_k_view_range) computation by
/// construction — this *is* its fast path.
pub(crate) fn count_k_screened_range(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    k: usize,
    lo: usize,
    hi: usize,
    exact_multiplicity_at_least: &mut dyn FnMut(&TileCursor<'_>, Point, usize) -> bool,
) -> Option<usize> {
    use crate::engine::use_tiled;
    if k == 0 || k > usize::from(u8::MAX) || !use_tiled(net, grid) {
        return None;
    }
    // The screen's start line is arbitrary: the strict-depth argument
    // holds for any partition, and certainty is what routes to exact.
    let mut kernel = SectorMaskKernel::new(theta, Angle::ZERO)?;
    let k8 = k as u8;
    let tiling = GridTiling::new(net.index(), grid);
    let mut cursor = net.tile_cursor();
    let mut meeting = 0usize;
    for t in 0..tiling.tile_count() {
        let Some((min_idx, max_idx)) = tiling.tile_index_span(t) else {
            continue;
        };
        if max_idx < lo || min_idx >= hi {
            continue;
        }
        let (cx, cy) = tiling.tile_cell(t);
        cursor.pin(cx, cy);
        kernel.screen_tile(&cursor, &tiling, grid, t, ScreenMode::Depth { k: k8 });
        let mut local = 0usize;
        tiling.for_each_point_in_tile(t, |idx| {
            if idx >= lo && idx < hi {
                let met = match kernel.k_verdict(local, k8) {
                    Some(m) => m,
                    None => exact_multiplicity_at_least(&cursor, grid.point(idx), k),
                };
                meeting += usize::from(met);
            }
            local += 1;
        });
    }
    Some(meeting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullview::PointAnalyzer;
    use fullview_model::{GroupId, SensorSpec};

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    fn pseudo_random_net(n: usize, r_base: f64) -> CameraNetwork {
        let mut cams = Vec::new();
        for i in 0..n {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            let facing = (i as f64 * 2.399_963) % TAU;
            let r = r_base * (1.0 + (i % 5) as f64 / 5.0);
            let phi = PI / 4.0 + PI / 2.0 * ((i % 3) as f64 / 3.0);
            cams.push(Camera::new(
                Point::new(x, y),
                Angle::new(facing),
                SensorSpec::new(r, phi).unwrap(),
                GroupId(i % 3),
            ));
        }
        CameraNetwork::new(Torus::unit(), cams)
    }

    #[test]
    fn support_gate_follows_sector_count() {
        assert!(SectorMaskKernel::supported(theta(PI)));
        assert!(SectorMaskKernel::supported(theta(TAU / 64.0)));
        assert!(SectorMaskKernel::supported(theta(TAU / 256.0)));
        assert!(!SectorMaskKernel::supported(theta(TAU / 257.0)));
        assert!(SectorMaskKernel::new(theta(TAU / 300.0), Angle::ZERO).is_none());
    }

    /// Every certain verdict must agree with the exact analyzer; this is
    /// the kernel's own unit-level differential (the cross-layer ones
    /// live in densegrid/engine/properties).
    #[test]
    fn verdicts_agree_with_exact_analysis() {
        let net = pseudo_random_net(140, 0.07);
        let grid = UnitGrid::new(Torus::unit(), 23);
        let tiling = GridTiling::new(net.index(), &grid);
        let mut cursor = net.tile_cursor();
        let mut analyzer = PointAnalyzer::new();
        for th in [theta(PI / 3.0), theta(PI), theta(0.5)] {
            let mut kernel = SectorMaskKernel::new(th, Angle::ZERO).unwrap();
            let suf = SectorPartition::sufficient(th, Angle::ZERO);
            let nec = SectorPartition::necessary(th, Angle::ZERO);
            let mut decided = 0usize;
            for t in 0..tiling.tile_count() {
                if tiling.tile_point_count(t) == 0 {
                    continue;
                }
                let (cx, cy) = tiling.tile_cell(t);
                cursor.pin(cx, cy);
                kernel.screen_tile(&cursor, &tiling, &grid, t, ScreenMode::Report);
                let mut local = 0usize;
                tiling.for_each_point_in_tile(t, |idx| {
                    let view = analyzer.analyze_point_with(&cursor, grid.point(idx));
                    if let PointVerdict::Decided {
                        count,
                        suf_full,
                        nec_full,
                    } = kernel.verdict(local)
                    {
                        decided += 1;
                        assert_eq!(count as usize, view.covering_cameras, "idx {idx}");
                        assert_eq!(
                            suf_full,
                            suf.is_satisfied_by(view.viewed_directions, view.has_colocated_camera),
                            "idx {idx} sufficient"
                        );
                        assert_eq!(
                            nec_full,
                            nec.is_satisfied_by(view.viewed_directions, view.has_colocated_camera),
                            "idx {idx} necessary"
                        );
                        assert_eq!(suf_full, view.is_full_view(th), "idx {idx} full-view");
                    }
                    local += 1;
                });
            }
            assert!(decided > 0, "screen decided nothing at θ={}", th.radians());
        }
    }

    #[test]
    fn depth_screen_agrees_with_min_arc_depth() {
        let net = pseudo_random_net(160, 0.09);
        let grid = UnitGrid::new(Torus::unit(), 19);
        let tiling = GridTiling::new(net.index(), &grid);
        let mut cursor = net.tile_cursor();
        let mut analyzer = PointAnalyzer::new();
        let th = theta(PI / 3.0);
        let mut kernel = SectorMaskKernel::new(th, Angle::ZERO).unwrap();
        for k in [1u8, 2, 3] {
            for t in 0..tiling.tile_count() {
                if tiling.tile_point_count(t) == 0 {
                    continue;
                }
                let (cx, cy) = tiling.tile_cell(t);
                cursor.pin(cx, cy);
                kernel.screen_tile(&cursor, &tiling, &grid, t, ScreenMode::Depth { k });
                let mut local = 0usize;
                tiling.for_each_point_in_tile(t, |idx| {
                    if let Some(met) = kernel.k_verdict(local, k) {
                        let view = analyzer.analyze_point_with(&cursor, grid.point(idx));
                        let exact =
                            crate::kfullview::min_arc_depth(view.viewed_directions, th.radians())
                                + usize::from(view.has_colocated_camera);
                        assert_eq!(met, exact >= usize::from(k), "idx {idx} k={k}");
                    }
                    local += 1;
                });
            }
        }
    }

    #[test]
    fn colocated_candidates_are_routed_to_exact() {
        // A camera exactly on a grid point must leave that point
        // undecided (the exact path handles colocation semantics).
        let torus = Torus::unit();
        let grid = UnitGrid::new(torus, 8);
        let p = grid.point(27);
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let net = CameraNetwork::new(torus, vec![Camera::new(p, Angle::ZERO, spec, GroupId(0))]);
        let tiling = GridTiling::new(net.index(), &grid);
        let mut cursor = net.tile_cursor();
        let th = theta(PI / 2.0);
        let mut kernel = SectorMaskKernel::new(th, Angle::ZERO).unwrap();
        let mut saw_undecided = false;
        for t in 0..tiling.tile_count() {
            if tiling.tile_point_count(t) == 0 {
                continue;
            }
            let (cx, cy) = tiling.tile_cell(t);
            cursor.pin(cx, cy);
            kernel.screen_tile(&cursor, &tiling, &grid, t, ScreenMode::Report);
            let mut local = 0usize;
            tiling.for_each_point_in_tile(t, |idx| {
                if idx == 27 {
                    assert_eq!(kernel.verdict(local), PointVerdict::Undecided);
                    saw_undecided = true;
                }
                local += 1;
            });
        }
        assert!(saw_undecided);
    }

    #[test]
    fn screen_stats_rate() {
        let mut s = ScreenStats::default();
        assert_eq!(s.screen_rate(), 1.0);
        s.screened = 3;
        s.exact = 1;
        assert_eq!(s.screen_rate(), 0.75);
    }
}
