//! Barrier full-view coverage — the paper's closing future-work item
//! (§VIII: "the critical condition to reach barrier full view coverage
//! will be an absorbing topic as well").
//!
//! Barrier coverage asks not for the whole region but for a *barrier*: a
//! connected belt of covered area an intruder crossing the region cannot
//! avoid. The full-view flavour demands the belt be full-view covered, so
//! any crosser is guaranteed a near-frontal capture. We discretize the
//! square into cells, mark cells whose centres are full-view covered, and
//! look for a 4-connected left-to-right component — blocking every
//! top-to-bottom crossing path.

use crate::fullview::is_full_view_covered;
use crate::theta::EffectiveAngle;
use fullview_geom::UnitGrid;
use fullview_model::CameraNetwork;
use std::collections::VecDeque;
use std::fmt;

/// Result of a barrier full-view coverage analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierReport {
    /// Grid side used for the analysis.
    pub grid_side: usize,
    /// Number of full-view covered cells.
    pub covered_cells: usize,
    /// Whether a 4-connected chain of full-view covered cells joins the
    /// left edge to the right edge (a horizontal barrier against vertical
    /// crossings).
    pub has_barrier: bool,
}

impl BarrierReport {
    /// Fraction of cells that are full-view covered.
    #[must_use]
    pub fn covered_fraction(&self) -> f64 {
        self.covered_cells as f64 / (self.grid_side * self.grid_side) as f64
    }
}

impl fmt::Display for BarrierReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "barrier[{}×{}]: {:.4} covered, barrier {}",
            self.grid_side,
            self.grid_side,
            self.covered_fraction(),
            if self.has_barrier {
                "present"
            } else {
                "absent"
            }
        )
    }
}

/// Analyses barrier full-view coverage on a `grid_side × grid_side`
/// discretization of the network's region.
///
/// A cell is covered when its centre is full-view covered for `theta`.
/// The barrier search is a BFS from every covered cell in the leftmost
/// column, moving through 4-connected covered cells (with vertical
/// wrap-around, honouring the torus), succeeding if any rightmost-column
/// cell is reached.
///
/// # Panics
///
/// Panics if `grid_side == 0`.
#[must_use]
pub fn barrier_full_view(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid_side: usize,
) -> BarrierReport {
    assert!(grid_side > 0, "grid side must be positive");
    let grid = UnitGrid::new(*net.torus(), grid_side);
    let k = grid_side;
    // covered[j * k + i] for column i, row j (UnitGrid is row-major with
    // index = j * k + i).
    let covered: Vec<bool> = (0..grid.len())
        .map(|idx| is_full_view_covered(net, grid.point(idx), theta))
        .collect();
    let covered_cells = covered.iter().filter(|c| **c).count();

    // BFS from all covered cells in column 0 towards column k-1.
    let mut visited = vec![false; covered.len()];
    let mut queue = VecDeque::new();
    for j in 0..k {
        let idx = j * k;
        if covered[idx] {
            visited[idx] = true;
            queue.push_back((0usize, j));
        }
    }
    let mut has_barrier = k == 1 && covered_cells > 0;
    while let Some((i, j)) = queue.pop_front() {
        if i == k - 1 {
            has_barrier = true;
            break;
        }
        // Neighbours: left/right (no horizontal wrap — the barrier must
        // physically span the strip), up/down with vertical wrap (torus).
        let mut neighbours: Vec<(usize, usize)> = Vec::with_capacity(4);
        if i > 0 {
            neighbours.push((i - 1, j));
        }
        if i + 1 < k {
            neighbours.push((i + 1, j));
        }
        neighbours.push((i, (j + 1) % k));
        neighbours.push((i, (j + k - 1) % k));
        for (ni, nj) in neighbours {
            let idx = nj * k + ni;
            if covered[idx] && !visited[idx] {
                visited[idx] = true;
                queue.push_back((ni, nj));
            }
        }
    }

    BarrierReport {
        grid_side,
        covered_cells,
        has_barrier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Point, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    /// A horizontal belt of camera rings at height `y`, dense enough that
    /// belt points are full-view covered.
    fn belt_network(y: f64) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.18, 2.0 * PI).unwrap();
        let mut cams = Vec::new();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            // Ring of 6 omni cameras around each belt anchor.
            for k in 0..6 {
                let dir = Angle::new(k as f64 * PI / 3.0);
                let pos = torus.offset(Point::new(x, y), dir, 0.05);
                cams.push(Camera::new(pos, dir.opposite(), spec, GroupId(0)));
            }
        }
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn empty_network_has_no_barrier() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let r = barrier_full_view(&net, theta(PI / 2.0), 10);
        assert!(!r.has_barrier);
        assert_eq!(r.covered_cells, 0);
        assert_eq!(r.covered_fraction(), 0.0);
    }

    #[test]
    fn belt_forms_barrier() {
        let net = belt_network(0.5);
        let r = barrier_full_view(&net, theta(PI / 2.0), 16);
        assert!(r.has_barrier, "{r}");
        // But the region is far from fully covered.
        assert!(r.covered_fraction() < 0.8, "{r}");
    }

    #[test]
    fn belt_near_seam_uses_vertical_wrap() {
        // A belt at y ≈ 0: cells in row 0; vertical wrap must not be needed
        // for the horizontal chain itself but the analysis must not crash
        // and must find it.
        let net = belt_network(0.02);
        let r = barrier_full_view(&net, theta(PI / 2.0), 16);
        assert!(r.has_barrier, "{r}");
    }

    #[test]
    fn broken_belt_has_no_barrier() {
        // Build a belt with a gap: only x in [0, 0.7).
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.12, 2.0 * PI).unwrap();
        let mut cams = Vec::new();
        for i in 0..14 {
            let x = i as f64 / 20.0;
            for k in 0..6 {
                let dir = Angle::new(k as f64 * PI / 3.0);
                let pos = torus.offset(Point::new(x, 0.5), dir, 0.04);
                cams.push(Camera::new(pos, dir.opposite(), spec, GroupId(0)));
            }
        }
        let net = CameraNetwork::new(torus, cams);
        let r = barrier_full_view(&net, theta(PI / 2.0), 16);
        assert!(!r.has_barrier, "{r}");
        assert!(r.covered_cells > 0, "{r}");
    }

    #[test]
    fn single_cell_grid() {
        let net = belt_network(0.5);
        let r = barrier_full_view(&net, theta(PI / 2.0), 1);
        // One cell at the centre of the belt: covered → trivially a barrier.
        assert!(r.has_barrier);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_panics() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let _ = barrier_full_view(&net, theta(PI / 2.0), 0);
    }
}
