//! Exact full-view coverage of a point (Definition 1).
//!
//! A point `P` is full-view covered with effective angle `θ` if **every**
//! facing direction `d⃗` has a covering camera `S` with `∠(d⃗, P→S) ≤ θ`.
//! Two equivalent exact algorithms are provided:
//!
//! * the **angular-gap** check: sort the viewed directions of all covering
//!   cameras; `P` is full-view covered iff no circular gap between
//!   consecutive directions exceeds `2θ` (`O(c log c)` in the number of
//!   covering cameras) — this is the fast path used by the dense-grid
//!   sweeps;
//! * the **safe-arc-set** check: union the arcs `[β−θ, β+θ]` around each
//!   viewed direction `β` and test whether the union is the full circle —
//!   slower, but it also yields the exact *unsafe* directions (the
//!   coverage holes of §VI-C), and serves as an independent oracle for
//!   property-testing the gap method.

use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, Arc, ArcSet, Point, ANGLE_EPS};
use fullview_model::{CameraNetwork, CoverageProvider};
use std::f64::consts::TAU;

/// Result of analysing the full-view coverage of a single point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointCoverage {
    /// Number of cameras covering the point.
    pub covering_cameras: usize,
    /// Whether a covering camera is co-located with the point (and can
    /// therefore view it from any side).
    pub has_colocated_camera: bool,
    /// The sorted viewed directions of the covering cameras (co-located
    /// cameras excluded).
    pub viewed_directions: Vec<Angle>,
    /// The largest circular gap between consecutive viewed directions
    /// (`2π` when at most one direction exists and no co-located camera).
    pub largest_gap: f64,
}

impl PointCoverage {
    /// Borrows this analysis as a [`CoverageView`].
    #[must_use]
    pub fn as_view(&self) -> CoverageView<'_> {
        CoverageView {
            covering_cameras: self.covering_cameras,
            has_colocated_camera: self.has_colocated_camera,
            viewed_directions: &self.viewed_directions,
            largest_gap: self.largest_gap,
        }
    }

    /// Whether the point is full-view covered for effective angle `theta`:
    /// the largest gap between viewed directions is at most `2θ`.
    #[must_use]
    pub fn is_full_view(&self, theta: EffectiveAngle) -> bool {
        self.as_view().is_full_view(theta)
    }

    /// The *worst* effective angle this point supports: the smallest `θ`
    /// for which it would be full-view covered, `largest_gap / 2`.
    ///
    /// Returns `None` when the point is not full-view coverable for any
    /// `θ ≤ π` (fewer than one viewed direction, or a gap wider than
    /// `2π`... i.e. no cameras at all).
    #[must_use]
    pub fn critical_theta(&self) -> Option<f64> {
        self.as_view().critical_theta()
    }
}

/// A borrowed view of a point's coverage analysis — the same facts as
/// [`PointCoverage`], with the sorted viewed directions borrowing a
/// caller-owned buffer (see [`PointAnalyzer::analyze_point_into`]).
#[derive(Debug, Clone, Copy)]
pub struct CoverageView<'a> {
    /// Number of cameras covering the point.
    pub covering_cameras: usize,
    /// Whether a covering camera is co-located with the point.
    pub has_colocated_camera: bool,
    /// The sorted viewed directions of the covering cameras (co-located
    /// cameras excluded).
    pub viewed_directions: &'a [Angle],
    /// The largest circular gap between consecutive viewed directions
    /// (`2π` when at most one direction exists).
    pub largest_gap: f64,
}

impl CoverageView<'_> {
    /// Whether the point is full-view covered for effective angle `theta`:
    /// the largest gap between viewed directions is at most `2θ`.
    #[must_use]
    pub fn is_full_view(&self, theta: EffectiveAngle) -> bool {
        if self.has_colocated_camera {
            return true;
        }
        // At least one camera must cover the point: with θ = π a single
        // viewed direction suffices (gap exactly 2π = 2θ), but zero
        // directions never do — full-view coverage implies 1-coverage.
        !self.viewed_directions.is_empty() && self.largest_gap <= theta.max_gap() + 2.0 * ANGLE_EPS
    }

    /// The *worst* effective angle this point supports — see
    /// [`PointCoverage::critical_theta`].
    #[must_use]
    pub fn critical_theta(&self) -> Option<f64> {
        if self.has_colocated_camera {
            return Some(0.0);
        }
        if self.covering_cameras == 0 {
            return None;
        }
        Some(self.largest_gap / 2.0)
    }

    /// Copies the borrowed analysis into an owned [`PointCoverage`].
    #[must_use]
    pub fn to_owned(&self) -> PointCoverage {
        PointCoverage {
            covering_cameras: self.covering_cameras,
            has_colocated_camera: self.has_colocated_camera,
            viewed_directions: self.viewed_directions.to_vec(),
            largest_gap: self.largest_gap,
        }
    }
}

/// Gathers the covering cameras of `point` into `dirs` (cleared first,
/// sorted on return) and returns `(covering_cameras, has_colocated)`.
///
/// Generic over the query backend — the whole-network spatial walk or a
/// pinned [`TileCursor`](fullview_model::TileCursor) — so both produce
/// identical analyses: candidate enumeration order is erased by the sort.
fn gather_directions<P: CoverageProvider>(
    provider: &P,
    point: Point,
    dirs: &mut Vec<Angle>,
) -> (usize, bool) {
    dirs.clear();
    let mut covering = 0usize;
    let mut colocated = false;
    let torus = provider.torus();
    provider.for_each_covering(point, |cam| {
        covering += 1;
        match cam.viewed_direction(torus, point) {
            Some(d) => dirs.push(d),
            None => colocated = true,
        }
    });
    // Unstable sort: no allocation (stable merge sort buffers), and equal
    // angles are indistinguishable so stability is irrelevant.
    dirs.sort_unstable_by(Angle::cmp_by_radians);
    (covering, colocated)
}

/// Analyses the coverage of `point`: gathers covering cameras, their
/// viewed directions, and the largest angular gap.
///
/// This is the shared work of every per-point predicate. One-shot callers
/// get an owned [`PointCoverage`]; loops evaluating many points should
/// hold a [`PointAnalyzer`] and use
/// [`analyze_point_into`](PointAnalyzer::analyze_point_into), which reuses
/// one buffer across calls.
#[must_use]
pub fn analyze_point(net: &CameraNetwork, point: Point) -> PointCoverage {
    let mut dirs: Vec<Angle> = Vec::new();
    let (covering, colocated) = gather_directions(net, point, &mut dirs);
    let largest_gap = largest_circular_gap(&dirs);
    PointCoverage {
        covering_cameras: covering,
        has_colocated_camera: colocated,
        viewed_directions: dirs,
        largest_gap,
    }
}

/// Reusable scratch state for allocation-free per-point coverage analysis.
///
/// The dense-grid sweeps call [`analyze_point_into`] once per grid point;
/// after the buffer warms up to the largest covering-camera count, the hot
/// loop performs no heap allocation at all.
///
/// [`analyze_point_into`]: PointAnalyzer::analyze_point_into
///
/// # Examples
///
/// ```
/// use fullview_core::{analyze_point, PointAnalyzer};
/// use fullview_geom::{Point, Torus};
/// use fullview_model::CameraNetwork;
///
/// let net = CameraNetwork::new(Torus::unit(), Vec::new());
/// let mut analyzer = PointAnalyzer::new();
/// let p = Point::new(0.25, 0.75);
/// let view = analyzer.analyze_point_into(&net, p);
/// assert_eq!(view.to_owned(), analyze_point(&net, p));
/// ```
#[derive(Debug, Default, Clone)]
pub struct PointAnalyzer {
    dirs: Vec<Angle>,
}

impl PointAnalyzer {
    /// Creates an analyzer with an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer whose buffer already holds room for `cap`
    /// viewed directions (one per covering camera).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        PointAnalyzer {
            dirs: Vec::with_capacity(cap),
        }
    }

    /// Analyses the coverage of `point` into this analyzer's scratch
    /// buffer, returning a [`CoverageView`] borrowing it.
    ///
    /// Produces results identical to [`analyze_point`] (the returned view
    /// `to_owned()` equals the owned analysis) without allocating once the
    /// buffer has grown to the local camera density.
    #[must_use]
    pub fn analyze_point_into(&mut self, net: &CameraNetwork, point: Point) -> CoverageView<'_> {
        self.analyze_point_with(net, point)
    }

    /// [`analyze_point_into`](Self::analyze_point_into) generalized over
    /// the query backend: accepts anything implementing
    /// [`CoverageProvider`] — the whole network, or a
    /// [`TileCursor`](fullview_model::TileCursor) pinned to the tile
    /// containing `point`. This is the single analysis path of the tile
    /// evaluation engine; both backends yield bit-identical views.
    #[must_use]
    pub fn analyze_point_with<P: CoverageProvider>(
        &mut self,
        provider: &P,
        point: Point,
    ) -> CoverageView<'_> {
        let (covering, colocated) = gather_directions(provider, point, &mut self.dirs);
        let largest_gap = largest_circular_gap(&self.dirs);
        CoverageView {
            covering_cameras: covering,
            has_colocated_camera: colocated,
            viewed_directions: &self.dirs,
            largest_gap,
        }
    }
}

/// The largest circular gap between consecutive angles of a **sorted**
/// slice (by radians). Returns `2π` for an empty or singleton-free slice
/// (zero angles); a single angle also yields `2π` minus nothing — the gap
/// wraps all the way around, which is `2π`.
///
/// This is the inner predicate of [`CoverageView::is_full_view`]: a point
/// is full-view covered iff the largest gap between its sorted viewed
/// directions is at most `2θ` (Theorem 1). Public so property tests can
/// pin it against a naive `O(n²)` reference.
///
/// # Panics
///
/// Does not panic, but the result is only meaningful when `sorted` really
/// is sorted ascending by radians.
pub fn largest_circular_gap(sorted: &[Angle]) -> f64 {
    match sorted.len() {
        0 => TAU,
        1 => TAU,
        _ => {
            let mut max_gap = sorted[0].radians() + TAU - sorted[sorted.len() - 1].radians();
            for w in sorted.windows(2) {
                max_gap = max_gap.max(w[1].radians() - w[0].radians());
            }
            max_gap
        }
    }
}

/// Whether `point` is full-view covered by `net` for effective angle
/// `theta` — the angular-gap algorithm.
///
/// # Examples
///
/// ```
/// use fullview_core::{is_full_view_covered, EffectiveAngle};
/// use fullview_geom::{Angle, Point, Torus};
/// use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
/// use std::f64::consts::PI;
///
/// let theta = EffectiveAngle::new(PI / 3.0)?;
/// let target = Point::new(0.5, 0.5);
/// let torus = Torus::unit();
/// let spec = SensorSpec::new(0.3, PI)?;
/// // Three cameras at 120° spacing around the target, all facing it:
/// // every gap is exactly 2π/3 = 2θ, so the point is full-view covered.
/// let cams: Vec<Camera> = (0..3)
///     .map(|k| {
///         let dir = Angle::new(k as f64 * 2.0 * PI / 3.0);
///         Camera::new(torus.offset(target, dir, 0.2), dir.opposite(), spec, GroupId(0))
///     })
///     .collect();
/// let net = CameraNetwork::new(torus, cams);
/// assert!(is_full_view_covered(&net, target, theta));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn is_full_view_covered(net: &CameraNetwork, point: Point, theta: EffectiveAngle) -> bool {
    analyze_point(net, point).is_full_view(theta)
}

/// The set of *safe* facing directions of `point` (Definition 1): the
/// union of arcs of half-width `θ` around each viewed direction. The point
/// is full-view covered iff this set is the whole circle.
#[must_use]
pub fn safe_directions(net: &CameraNetwork, point: Point, theta: EffectiveAngle) -> ArcSet {
    let cov = analyze_point(net, point);
    if cov.has_colocated_camera {
        return ArcSet::full_circle();
    }
    ArcSet::from_centered_arcs(cov.viewed_directions.iter().copied(), theta.radians())
}

/// The *unsafe* facing directions of `point` — the coverage holes of
/// §VI-C. Empty iff the point is full-view covered.
#[must_use]
pub fn unsafe_directions(net: &CameraNetwork, point: Point, theta: EffectiveAngle) -> Vec<Arc> {
    safe_directions(net, point, theta).gaps()
}

/// Whether a specific facing direction `d` of `point` is safe: some
/// covering camera's viewed direction lies within `θ` of `d`.
#[must_use]
pub fn is_direction_safe(
    net: &CameraNetwork,
    point: Point,
    theta: EffectiveAngle,
    d: Angle,
) -> bool {
    let mut safe = false;
    net.for_each_covering(point, |cam| {
        if safe {
            return;
        }
        match cam.viewed_direction(net.torus(), point) {
            Some(viewed) => {
                if viewed.distance(d) <= theta.radians() + ANGLE_EPS {
                    safe = true;
                }
            }
            None => safe = true,
        }
    });
    safe
}

/// The fraction of facing directions of `point` that are safe — the
/// probability that an object at `point` facing a uniformly random
/// direction is captured within the effective angle.
///
/// `1.0` iff the point is full-view covered; between 0 and 1 it grades
/// partial protection (useful as a soft coverage quality score when the
/// full guarantee is out of budget).
///
/// ```
/// use fullview_core::{safe_fraction, EffectiveAngle};
/// use fullview_geom::Torus;
/// use fullview_model::CameraNetwork;
/// use std::f64::consts::PI;
///
/// let net = CameraNetwork::new(Torus::unit(), Vec::new());
/// let theta = EffectiveAngle::new(PI / 4.0)?;
/// assert_eq!(safe_fraction(&net, fullview_geom::Point::new(0.5, 0.5), theta), 0.0);
/// # Ok::<(), fullview_core::CoreError>(())
/// ```
#[must_use]
pub fn safe_fraction(net: &CameraNetwork, point: Point, theta: EffectiveAngle) -> f64 {
    safe_directions(net, point, theta).measure() / TAU
}

/// Whether `point` is full-view covered — the independent safe-arc-set
/// algorithm, used as an oracle against
/// [`is_full_view_covered`]. Prefer the gap algorithm in hot paths.
#[must_use]
pub fn is_full_view_covered_arcset(
    net: &CameraNetwork,
    point: Point,
    theta: EffectiveAngle,
) -> bool {
    safe_directions(net, point, theta).covers_circle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Torus;
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    /// Cameras surrounding `target` at the given directions, all facing it.
    fn ring_network(target: Point, directions: &[f64], dist: f64, r: f64) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(r, PI).unwrap();
        let cams: Vec<Camera> = directions
            .iter()
            .map(|&d| {
                let dir = Angle::new(d);
                Camera::new(
                    torus.offset(target, dir, dist),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn empty_network_not_covered() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let p = Point::new(0.5, 0.5);
        assert!(!is_full_view_covered(&net, p, theta(PI)));
        assert!(!is_full_view_covered_arcset(&net, p, theta(PI)));
        assert!(analyze_point(&net, p).critical_theta().is_none());
    }

    #[test]
    fn single_camera_covers_only_at_theta_pi() {
        let p = Point::new(0.5, 0.5);
        let net = ring_network(p, &[0.0], 0.1, 0.3);
        assert!(is_full_view_covered(&net, p, theta(PI)));
        assert!(!is_full_view_covered(&net, p, theta(PI - 0.01)));
    }

    #[test]
    fn evenly_spaced_ring_critical_theta() {
        let p = Point::new(0.5, 0.5);
        for k in [3usize, 4, 5, 8] {
            let dirs: Vec<f64> = (0..k).map(|i| i as f64 * TAU / k as f64).collect();
            let net = ring_network(p, &dirs, 0.1, 0.3);
            let crit = PI / k as f64; // gaps are 2π/k = 2·(π/k)
            assert!(
                is_full_view_covered(&net, p, theta(crit + 1e-6)),
                "k={k} should cover just above critical"
            );
            assert!(
                !is_full_view_covered(&net, p, theta(crit - 1e-6)),
                "k={k} should fail just below critical"
            );
            let analysed = analyze_point(&net, p);
            assert!((analysed.critical_theta().unwrap() - crit).abs() < 1e-9);
        }
    }

    #[test]
    fn uneven_ring_fails_on_big_gap() {
        let p = Point::new(0.5, 0.5);
        // Directions clustered in the right half-plane: huge gap on the left.
        let net = ring_network(p, &[0.0, 0.5, 1.0, 1.5, 2.0], 0.1, 0.3);
        // Gap from 2.0 back to 0 is 2π - 2 ≈ 4.28 > 2θ for θ = π/2.
        assert!(!is_full_view_covered(&net, p, theta(PI / 2.0)));
        // The paper's point: k-coverage (here 5-coverage) does not imply
        // full-view coverage.
        assert_eq!(net.coverage_count(p), 5);
    }

    #[test]
    fn out_of_range_cameras_do_not_help() {
        let p = Point::new(0.5, 0.5);
        // Ring at distance 0.2 with sensing radius 0.1: nobody covers P.
        let dirs: Vec<f64> = (0..8).map(|i| i as f64 * TAU / 8.0).collect();
        let net = ring_network(p, &dirs, 0.2, 0.1);
        assert_eq!(net.coverage_count(p), 0);
        assert!(!is_full_view_covered(&net, p, theta(PI)));
    }

    #[test]
    fn colocated_camera_covers_everything() {
        let torus = Torus::unit();
        let p = Point::new(0.5, 0.5);
        let spec = SensorSpec::new(0.1, PI / 4.0).unwrap();
        let net = CameraNetwork::new(torus, vec![Camera::new(p, Angle::ZERO, spec, GroupId(0))]);
        assert!(is_full_view_covered(&net, p, theta(0.01)));
        assert!(is_full_view_covered_arcset(&net, p, theta(0.01)));
        assert_eq!(analyze_point(&net, p).critical_theta(), Some(0.0));
    }

    #[test]
    fn gap_and_arcset_agree_on_ring_cases() {
        let p = Point::new(0.3, 0.7);
        for k in 1..8usize {
            let dirs: Vec<f64> = (0..k).map(|i| i as f64 * TAU / k as f64 + 0.3).collect();
            let net = ring_network(p, &dirs, 0.12, 0.3);
            for t in [0.2, PI / 4.0, PI / 2.0, PI * 0.9, PI] {
                let th = theta(t);
                assert_eq!(
                    is_full_view_covered(&net, p, th),
                    is_full_view_covered_arcset(&net, p, th),
                    "k={k}, θ={t}"
                );
            }
        }
    }

    #[test]
    fn safe_directions_measure_matches_expectation() {
        let p = Point::new(0.5, 0.5);
        // One camera east of the point: safe arc of width 2θ around 0.
        let net = ring_network(p, &[0.0], 0.1, 0.3);
        let th = theta(PI / 4.0);
        let safe = safe_directions(&net, p, th);
        assert!((safe.measure() - 2.0 * th.radians()).abs() < 1e-9);
        assert!(is_direction_safe(&net, p, th, Angle::ZERO));
        assert!(is_direction_safe(&net, p, th, Angle::new(PI / 4.0 - 0.01)));
        assert!(!is_direction_safe(&net, p, th, Angle::new(PI)));
    }

    #[test]
    fn unsafe_directions_complement_safe() {
        let p = Point::new(0.5, 0.5);
        let net = ring_network(p, &[0.0, PI], 0.1, 0.3);
        let th = theta(PI / 4.0);
        let holes = unsafe_directions(&net, p, th);
        assert_eq!(holes.len(), 2);
        let hole_total: f64 = holes.iter().map(Arc::width).sum();
        assert!((hole_total - (TAU - 4.0 * th.radians())).abs() < 1e-9);
        // The bisector of each hole is indeed unsafe.
        for h in &holes {
            assert!(!is_direction_safe(&net, p, th, h.bisector()));
        }
    }

    #[test]
    fn viewed_directions_sorted() {
        let p = Point::new(0.5, 0.5);
        let net = ring_network(p, &[3.0, 1.0, 5.0, 0.2], 0.1, 0.3);
        let cov = analyze_point(&net, p);
        assert_eq!(cov.covering_cameras, 4);
        assert!(cov
            .viewed_directions
            .windows(2)
            .all(|w| w[0].radians() <= w[1].radians()));
    }

    #[test]
    fn exact_tiling_boundary_is_covered() {
        // Gaps exactly equal to 2θ: closed-condition semantics say covered.
        let p = Point::new(0.5, 0.5);
        let dirs: Vec<f64> = (0..4).map(|i| i as f64 * TAU / 4.0).collect();
        let net = ring_network(p, &dirs, 0.1, 0.3);
        assert!(is_full_view_covered(&net, p, theta(PI / 4.0)));
        assert!(is_full_view_covered_arcset(&net, p, theta(PI / 4.0)));
    }
}
