//! Probabilistic sensing extension — the paper's other future-work item
//! (§VIII: "extending our results in probabilistic sensing models").
//!
//! The binary sector model detects perfectly inside the sector. Real
//! cameras degrade with distance: we adopt the standard exponential-decay
//! model used throughout the probabilistic-coverage literature — detection
//! is certain within an inner fraction of the range and decays as
//! `exp(−β·(d − r_inner))` beyond it, reaching the sector edge with a
//! configurable floor. Full-view coverage generalizes to *confidence-`γ`*
//! full-view coverage: every facing direction must be watched, within the
//! effective angle, by a camera whose detection probability at the target
//! is at least `γ`.

use crate::engine::for_each_grid_point;
use crate::error::CoreError;
use crate::fullview::{largest_circular_gap, PointCoverage};
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, Point, Torus, UnitGrid, ANGLE_EPS};
use fullview_model::{Camera, CameraNetwork, CoverageProvider};

/// An exponential-decay probabilistic sensing model layered over the
/// binary sector geometry.
///
/// Detection probability of a camera at torus distance `d` from a target
/// in its sector of radius `r`:
///
/// * `1` for `d ≤ inner_fraction·r`;
/// * `exp(−decay·(d − inner_fraction·r)/r)` for
///   `inner_fraction·r < d ≤ r`;
/// * `0` outside the sector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilisticModel {
    inner_fraction: f64,
    decay: f64,
}

impl ProbabilisticModel {
    /// Creates a model with certain detection inside `inner_fraction` of
    /// the range and decay rate `decay` (per unit of normalized distance)
    /// beyond it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProbability`] if `inner_fraction` is
    /// outside `[0, 1]` or `decay` is negative or non-finite.
    pub fn new(inner_fraction: f64, decay: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&inner_fraction) || !inner_fraction.is_finite() {
            return Err(CoreError::InvalidProbability {
                name: "inner_fraction",
                value: inner_fraction,
            });
        }
        if !decay.is_finite() || decay < 0.0 {
            return Err(CoreError::InvalidProbability {
                name: "decay",
                value: decay,
            });
        }
        Ok(ProbabilisticModel {
            inner_fraction,
            decay,
        })
    }

    /// The binary sector model expressed in this family (`inner_fraction
    /// = 1`): detection is certain everywhere in the sector.
    #[must_use]
    pub fn binary() -> Self {
        ProbabilisticModel {
            inner_fraction: 1.0,
            decay: 0.0,
        }
    }

    /// Detection probability of `camera` for `target` on the network
    /// torus: zero outside the camera's sector, the decay profile inside.
    #[must_use]
    pub fn detection_probability(
        &self,
        net: &CameraNetwork,
        camera: &Camera,
        target: Point,
    ) -> f64 {
        self.detection_probability_on(net.torus(), camera, target)
    }

    /// [`detection_probability`](Self::detection_probability) with an
    /// explicit torus — the form the backend-generic sweeps use (a tile
    /// cursor is not a network, but shares its torus).
    #[must_use]
    pub fn detection_probability_on(&self, torus: &Torus, camera: &Camera, target: Point) -> f64 {
        if !camera.covers(torus, target) {
            return 0.0;
        }
        let r = camera.spec().radius();
        let d = torus.distance(camera.position(), target);
        let inner = self.inner_fraction * r;
        if d <= inner {
            1.0
        } else {
            (-self.decay * (d - inner) / r).exp()
        }
    }
}

/// Whether `point` is full-view covered with confidence `gamma`: every
/// facing direction has, within effective angle `theta`, a camera whose
/// detection probability at `point` is at least `gamma`.
///
/// With `gamma = 0` (or the [`ProbabilisticModel::binary`] model and any
/// `gamma ≤ 1`), this coincides with plain full-view coverage.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] if `gamma ∉ [0, 1]`.
pub fn is_full_view_covered_with_confidence(
    net: &CameraNetwork,
    point: Point,
    theta: EffectiveAngle,
    model: &ProbabilisticModel,
    gamma: f64,
) -> Result<bool, CoreError> {
    let coverage = confident_point_coverage(net, point, model, gamma)?;
    Ok(coverage.is_full_view(theta))
}

/// Analyses `point` keeping only cameras whose detection probability
/// reaches `gamma` — the probabilistic analogue of
/// [`crate::analyze_point`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] if `gamma ∉ [0, 1]`.
pub fn confident_point_coverage(
    net: &CameraNetwork,
    point: Point,
    model: &ProbabilisticModel,
    gamma: f64,
) -> Result<PointCoverage, CoreError> {
    confident_point_coverage_with(net, point, model, gamma)
}

/// [`confident_point_coverage`] generalized over the query backend (the
/// whole network or a pinned tile cursor) — the probabilistic sweep's
/// entry into the shared tile evaluation engine.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] if `gamma ∉ [0, 1]`.
pub fn confident_point_coverage_with<P: CoverageProvider>(
    provider: &P,
    point: Point,
    model: &ProbabilisticModel,
    gamma: f64,
) -> Result<PointCoverage, CoreError> {
    validate_gamma(gamma)?;
    let mut dirs: Vec<Angle> = Vec::new();
    let (covering, colocated) = gather_confident(provider, point, model, gamma, &mut dirs);
    let largest_gap = largest_circular_gap(&dirs);
    Ok(PointCoverage {
        covering_cameras: covering,
        has_colocated_camera: colocated,
        viewed_directions: dirs,
        largest_gap,
    })
}

fn validate_gamma(gamma: f64) -> Result<(), CoreError> {
    if !(0.0..=1.0).contains(&gamma) || !gamma.is_finite() {
        return Err(CoreError::InvalidProbability {
            name: "gamma",
            value: gamma,
        });
    }
    Ok(())
}

/// Gathers the `γ`-confident covering cameras of `point` into `dirs`
/// (cleared first, sorted on return) — the probabilistic analogue of the
/// analyzer's direction gathering, shared by the one-shot and grid-sweep
/// paths.
fn gather_confident<P: CoverageProvider>(
    provider: &P,
    point: Point,
    model: &ProbabilisticModel,
    gamma: f64,
    dirs: &mut Vec<Angle>,
) -> (usize, bool) {
    dirs.clear();
    let mut covering = 0usize;
    let mut colocated = false;
    let torus = provider.torus();
    provider.for_each_covering(point, |cam| {
        if model.detection_probability_on(torus, cam, point) + ANGLE_EPS < gamma {
            return;
        }
        covering += 1;
        match cam.viewed_direction(torus, point) {
            Some(d) => dirs.push(d),
            None => colocated = true,
        }
    });
    dirs.sort_unstable_by(Angle::cmp_by_radians);
    (covering, colocated)
}

/// Fraction of `grid` points that are full-view covered with confidence
/// `gamma` — the batch form of [`is_full_view_covered_with_confidence`],
/// swept tile-coherently through the shared evaluation engine with one
/// reused direction buffer (allocation-free once warm).
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] if `gamma ∉ [0, 1]`.
pub fn confident_covered_fraction(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    model: &ProbabilisticModel,
    gamma: f64,
) -> Result<f64, CoreError> {
    validate_gamma(gamma)?;
    let mut dirs: Vec<Angle> = Vec::new();
    let mut hits = 0usize;
    for_each_grid_point(net, grid, |query, _, point| {
        let (covering, colocated) = gather_confident(query, point, model, gamma, &mut dirs);
        let view = crate::fullview::CoverageView {
            covering_cameras: covering,
            has_colocated_camera: colocated,
            viewed_directions: &dirs,
            largest_gap: largest_circular_gap(&dirs),
        };
        if view.is_full_view(theta) {
            hits += 1;
        }
    });
    Ok(hits as f64 / grid.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Torus;
    use fullview_model::{GroupId, SensorSpec};
    use std::f64::consts::{PI, TAU};

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    fn ring(target: Point, dist: f64, count: usize) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let cams: Vec<Camera> = (0..count)
            .map(|i| {
                let dir = Angle::new(i as f64 * TAU / count as f64);
                Camera::new(
                    torus.offset(target, dir, dist),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn binary_model_matches_plain_full_view() {
        let p = Point::new(0.5, 0.5);
        let net = ring(p, 0.12, 5);
        let th = theta(PI / 4.0);
        let plain = crate::fullview::is_full_view_covered(&net, p, th);
        let prob =
            is_full_view_covered_with_confidence(&net, p, th, &ProbabilisticModel::binary(), 1.0)
                .unwrap();
        assert_eq!(plain, prob);
    }

    #[test]
    fn detection_decays_with_distance() {
        let p = Point::new(0.5, 0.5);
        let net = ring(p, 0.2, 1);
        let model = ProbabilisticModel::new(0.3, 3.0).unwrap();
        let cam = &net.cameras()[0];
        // Target at distance 0.2 of radius 0.3: beyond the inner 0.09.
        let prob = model.detection_probability(&net, cam, p);
        assert!(prob > 0.0 && prob < 1.0);
        // A closer target inside the inner zone is certain.
        let close = net.torus().offset(
            cam.position(),
            net.torus().direction(cam.position(), p).unwrap(),
            0.05,
        );
        let prob_close = model.detection_probability(&net, cam, close);
        assert_eq!(prob_close, 1.0);
        // Out of sector: zero.
        let behind = net.torus().offset(
            cam.position(),
            net.torus().direction(cam.position(), p).unwrap().opposite(),
            0.05,
        );
        assert_eq!(model.detection_probability(&net, cam, behind), 0.0);
    }

    #[test]
    fn higher_confidence_loses_far_cameras() {
        let p = Point::new(0.5, 0.5);
        // 5 cameras at a far ring: detection prob at p is modest.
        let net = ring(p, 0.25, 5);
        let th = theta(PI / 4.0);
        let model = ProbabilisticModel::new(0.2, 3.0).unwrap();
        let cam = &net.cameras()[0];
        let det = model.detection_probability(&net, cam, p);
        assert!(det < 0.9 && det > 0.1, "detection {det}");
        // Low confidence: all five count → full-view covered (gaps 2π/5 ≤ 2θ).
        let low = is_full_view_covered_with_confidence(&net, p, th, &model, det - 0.01).unwrap();
        assert!(low);
        // Confidence above the ring's detection prob: nobody counts.
        let high = is_full_view_covered_with_confidence(&net, p, th, &model, det + 0.01).unwrap();
        assert!(!high);
    }

    #[test]
    fn gamma_zero_counts_every_covering_camera() {
        let p = Point::new(0.5, 0.5);
        let net = ring(p, 0.28, 6);
        let model = ProbabilisticModel::new(0.1, 10.0).unwrap();
        let cov = confident_point_coverage(&net, p, &model, 0.0).unwrap();
        assert_eq!(cov.covering_cameras, 6);
    }

    #[test]
    fn confident_fraction_matches_per_point_sweep() {
        // A few rings give a mix of covered, partially-covered, and
        // uncovered grid points; the engine-backed batch sweep must agree
        // exactly with the per-point legacy path.
        let net = {
            let torus = Torus::unit();
            let spec = SensorSpec::new(0.22, PI).unwrap();
            let mut cams = Vec::new();
            for (cx, cy, count) in [(0.25, 0.25, 5), (0.7, 0.6, 3), (0.1, 0.85, 6)] {
                let centre = Point::new(cx, cy);
                for i in 0..count {
                    let dir = Angle::new(i as f64 * TAU / count as f64 + 0.1);
                    cams.push(Camera::new(
                        torus.offset(centre, dir, 0.13),
                        dir.opposite(),
                        spec,
                        GroupId(i % 2),
                    ));
                }
            }
            CameraNetwork::new(torus, cams)
        };
        let model = ProbabilisticModel::new(0.22, 4.0).unwrap();
        let th = theta(PI / 2.0);
        for side in [1usize, 7, 19] {
            let grid = UnitGrid::new(Torus::unit(), side);
            for gamma in [0.0, 0.4, 1.0] {
                let batch = confident_covered_fraction(&net, &grid, th, &model, gamma).unwrap();
                let per_point = grid
                    .iter()
                    .filter(|p| {
                        is_full_view_covered_with_confidence(&net, *p, th, &model, gamma).unwrap()
                    })
                    .count() as f64
                    / grid.len() as f64;
                assert_eq!(batch, per_point, "side={side} gamma={gamma}");
            }
        }
        // Invalid gamma is rejected before any sweep work.
        let grid = UnitGrid::new(Torus::unit(), 4);
        assert!(confident_covered_fraction(&net, &grid, th, &model, -0.1).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ProbabilisticModel::new(-0.1, 1.0).is_err());
        assert!(ProbabilisticModel::new(1.1, 1.0).is_err());
        assert!(ProbabilisticModel::new(0.5, -1.0).is_err());
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let model = ProbabilisticModel::binary();
        assert!(is_full_view_covered_with_confidence(
            &net,
            Point::new(0.5, 0.5),
            theta(PI / 2.0),
            &model,
            1.5
        )
        .is_err());
    }
}
