//! Fleet-sizing helpers: the paper's theorems turned into design
//! queries.
//!
//! A network designer holds some quantities fixed (the camera catalogue,
//! a coverage target) and asks for the rest. These functions invert the
//! CSA formulas and the exact per-point probability:
//!
//! * *"I have cameras worth `s_c` of weighted sensing area — how many do
//!   I need before Theorem 2 guarantees full-view coverage?"* →
//!   [`min_cameras_for_guarantee`];
//! * *"Below how many cameras is coverage impossible (Theorem 1)?"* →
//!   [`max_cameras_below_necessary`];
//! * *"What weighted sensing area gives an expected full-view covered
//!   fraction of at least `f` at `n` cameras?"* →
//!   [`required_area_for_expected_fraction`].

use crate::csa::{csa_necessary, csa_sufficient};
use crate::error::CoreError;
use crate::exact::prob_point_full_view_uniform;
use crate::theta::EffectiveAngle;
use fullview_model::NetworkProfile;

/// Upper bound on fleet sizes the search functions will consider.
const MAX_FLEET: usize = 1 << 30;

/// The smallest `n ≥ 3` for which `s_c ≥ s_{S,c}(n)` — deploying at
/// least this many cameras of total weighted sensing area `s_c` makes
/// full-view coverage asymptotically guaranteed (Theorem 2).
///
/// `s_{S,c}` is strictly decreasing in `n`, so binary search applies.
///
/// # Errors
///
/// Returns [`CoreError::SearchFailed`] if even `2^30` cameras would not
/// reach the guarantee (i.e. `s_c` is absurdly small), and
/// [`CoreError::InvalidProbability`]-style validation is delegated to
/// the CSA functions' own contracts.
pub fn min_cameras_for_guarantee(s_c: f64, theta: EffectiveAngle) -> Result<usize, CoreError> {
    if !s_c.is_finite() || s_c <= 0.0 {
        return Err(CoreError::SearchFailed {
            what: "weighted sensing area must be positive",
        });
    }
    if csa_sufficient(3, theta) <= s_c {
        return Ok(3);
    }
    let mut hi = 3usize;
    while csa_sufficient(hi, theta) > s_c {
        if hi >= MAX_FLEET {
            return Err(CoreError::SearchFailed {
                what: "no fleet size up to 2^30 reaches the sufficient CSA",
            });
        }
        hi *= 2;
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if csa_sufficient(mid, theta) > s_c {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

/// The largest `n ≥ 3` for which `s_c < s_{N,c}(n)` — at or below this
/// fleet size, Theorem 1 says full-view coverage fails with probability
/// bounded away from one... precisely: the weighted sensing area is
/// below even the *necessary* threshold, so coverage is asymptotically
/// impossible. Returns `None` when `s_c ≥ s_{N,c}(3)` never holds, i.e.
/// the budget is already above the necessary CSA for every `n ≥ 3`.
///
/// # Errors
///
/// Returns [`CoreError::SearchFailed`] for a non-positive `s_c`.
pub fn max_cameras_below_necessary(
    s_c: f64,
    theta: EffectiveAngle,
) -> Result<Option<usize>, CoreError> {
    if !s_c.is_finite() || s_c <= 0.0 {
        return Err(CoreError::SearchFailed {
            what: "weighted sensing area must be positive",
        });
    }
    if s_c >= csa_necessary(3, theta) {
        return Ok(None);
    }
    // s_Nc decreases in n; find the last n with s_c < s_Nc(n).
    let mut hi = 3usize;
    while s_c < csa_necessary(hi, theta) {
        if hi >= MAX_FLEET {
            return Err(CoreError::SearchFailed {
                what: "necessary CSA stays above the budget up to 2^30 cameras",
            });
        }
        hi *= 2;
    }
    let mut lo = hi / 2; // s_c < s_Nc(lo), s_c >= s_Nc(hi)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if s_c < csa_necessary(mid, theta) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

/// The smallest weighted sensing area `s_c` such that the *exact*
/// per-point full-view probability (see
/// [`prob_point_full_view_uniform`]) reaches `fraction`, for `n`
/// uniformly deployed cameras with the heterogeneous *shape* of
/// `profile` (relative areas, angles, fractions preserved; overall scale
/// adjusted).
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] for `fraction ∉ (0, 1)` and
/// [`CoreError::SearchFailed`] if the target is unreachable within
/// physically meaningful areas (`s_c ≤ 4`, beyond which sectors dwarf
/// the region).
pub fn required_area_for_expected_fraction(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
    fraction: f64,
) -> Result<f64, CoreError> {
    if !(0.0..1.0).contains(&fraction) || fraction == 0.0 {
        return Err(CoreError::InvalidProbability {
            name: "fraction",
            value: fraction,
        });
    }
    let prob_at = |s_c: f64| -> f64 {
        let scaled = profile
            .scale_to_weighted_area(s_c)
            .expect("positive target area");
        prob_point_full_view_uniform(&scaled, n, theta)
    };
    let mut lo = 1e-9;
    let mut hi = 1e-3;
    while prob_at(hi) < fraction {
        hi *= 2.0;
        if hi > 4.0 {
            return Err(CoreError::SearchFailed {
                what: "target fraction unreachable at any physical sensing area",
            });
        }
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if prob_at(mid) < fraction {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;
    use std::f64::consts::PI;

    fn theta() -> EffectiveAngle {
        EffectiveAngle::new(PI / 4.0).unwrap()
    }

    #[test]
    fn min_cameras_is_tight() {
        let s_c = 0.02;
        let n = min_cameras_for_guarantee(s_c, theta()).unwrap();
        assert!(csa_sufficient(n, theta()) <= s_c);
        assert!(
            n == 3 || csa_sufficient(n - 1, theta()) > s_c,
            "not minimal: {n}"
        );
    }

    #[test]
    fn min_cameras_monotone_in_budget() {
        let n_small = min_cameras_for_guarantee(0.005, theta()).unwrap();
        let n_big = min_cameras_for_guarantee(0.05, theta()).unwrap();
        assert!(n_big < n_small, "{n_big} !< {n_small}");
    }

    #[test]
    fn min_cameras_huge_budget_is_three() {
        assert_eq!(min_cameras_for_guarantee(10.0, theta()).unwrap(), 3);
    }

    #[test]
    fn min_cameras_rejects_bad_budget() {
        assert!(min_cameras_for_guarantee(0.0, theta()).is_err());
        assert!(min_cameras_for_guarantee(f64::NAN, theta()).is_err());
    }

    #[test]
    fn below_necessary_is_tight() {
        let s_c = 0.01;
        let floor = max_cameras_below_necessary(s_c, theta())
            .unwrap()
            .expect("small budget has a floor");
        assert!(s_c < csa_necessary(floor, theta()));
        assert!(s_c >= csa_necessary(floor + 1, theta()));
    }

    #[test]
    fn below_necessary_none_for_large_budget() {
        assert_eq!(max_cameras_below_necessary(10.0, theta()).unwrap(), None);
    }

    #[test]
    fn floor_below_guarantee() {
        // The impossible-floor is always below the guaranteed size.
        let s_c = 0.015;
        let floor = max_cameras_below_necessary(s_c, theta())
            .unwrap()
            .expect("floor exists");
        let need = min_cameras_for_guarantee(s_c, theta()).unwrap();
        assert!(floor < need, "floor {floor} >= need {need}");
    }

    #[test]
    fn required_area_reaches_target() {
        let profile =
            NetworkProfile::homogeneous(SensorSpec::with_sensing_area(1.0, PI / 2.0).unwrap());
        let n = 800;
        let target = 0.95;
        let s = required_area_for_expected_fraction(&profile, n, theta(), target).unwrap();
        let scaled = profile.scale_to_weighted_area(s).unwrap();
        let p = prob_point_full_view_uniform(&scaled, n, theta());
        assert!(p >= target - 1e-6, "p={p} below target at s={s}");
        // And roughly tight: 1% less area misses the target.
        let scaled = profile.scale_to_weighted_area(s * 0.9).unwrap();
        assert!(prob_point_full_view_uniform(&scaled, n, theta()) < target);
    }

    #[test]
    fn required_area_monotone_in_target() {
        let profile = NetworkProfile::homogeneous(SensorSpec::with_sensing_area(1.0, PI).unwrap());
        let s50 = required_area_for_expected_fraction(&profile, 500, theta(), 0.5).unwrap();
        let s99 = required_area_for_expected_fraction(&profile, 500, theta(), 0.99).unwrap();
        assert!(s99 > s50);
    }

    #[test]
    fn required_area_rejects_bad_fraction() {
        let profile = NetworkProfile::homogeneous(SensorSpec::with_sensing_area(1.0, PI).unwrap());
        assert!(required_area_for_expected_fraction(&profile, 100, theta(), 0.0).is_err());
        assert!(required_area_for_expected_fraction(&profile, 100, theta(), 1.0).is_err());
        assert!(required_area_for_expected_fraction(&profile, 100, theta(), -0.5).is_err());
    }
}
