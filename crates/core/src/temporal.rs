//! Time-aggregated coverage over network snapshots.
//!
//! Mobile or panning networks (see `fullview_deploy`'s mobility module)
//! are analysed as sequences of static snapshots. Three service levels
//! matter operationally:
//!
//! * **always** full-view covered — the static guarantee at every
//!   sampled instant (recognition-grade surveillance with no blackout);
//! * **fraction of time** covered — average service quality;
//! * **eventually** covered within the window — enough for patrol-style
//!   monitoring where a pass-by identification suffices.

use crate::fullview::is_full_view_covered;
use crate::theta::EffectiveAngle;
use fullview_geom::Point;
use fullview_model::CameraNetwork;

/// Fraction of snapshots in which `point` is full-view covered.
///
/// Returns 0 for an empty snapshot list.
#[must_use]
pub fn fraction_of_time_full_view(
    snapshots: &[CameraNetwork],
    point: Point,
    theta: EffectiveAngle,
) -> f64 {
    if snapshots.is_empty() {
        return 0.0;
    }
    let covered = snapshots
        .iter()
        .filter(|net| is_full_view_covered(net, point, theta))
        .count();
    covered as f64 / snapshots.len() as f64
}

/// Whether `point` is full-view covered in **every** snapshot.
#[must_use]
pub fn always_full_view(snapshots: &[CameraNetwork], point: Point, theta: EffectiveAngle) -> bool {
    !snapshots.is_empty()
        && snapshots
            .iter()
            .all(|net| is_full_view_covered(net, point, theta))
}

/// Whether `point` is full-view covered in **at least one** snapshot.
#[must_use]
pub fn eventually_full_view(
    snapshots: &[CameraNetwork],
    point: Point,
    theta: EffectiveAngle,
) -> bool {
    snapshots
        .iter()
        .any(|net| is_full_view_covered(net, point, theta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::{PI, TAU};

    fn theta() -> EffectiveAngle {
        EffectiveAngle::new(PI / 3.0).unwrap()
    }

    /// A snapshot where `target` is surrounded by `count` cameras.
    fn ring_snapshot(target: Point, count: usize, phase: f64) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let cams: Vec<Camera> = (0..count)
            .map(|i| {
                let dir = Angle::new(i as f64 * TAU / count.max(1) as f64 + phase);
                Camera::new(
                    torus.offset(target, dir, 0.1),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn empty_snapshot_list() {
        let p = Point::new(0.5, 0.5);
        assert_eq!(fraction_of_time_full_view(&[], p, theta()), 0.0);
        assert!(!always_full_view(&[], p, theta()));
        assert!(!eventually_full_view(&[], p, theta()));
    }

    #[test]
    fn alternating_coverage() {
        let p = Point::new(0.5, 0.5);
        let good = ring_snapshot(p, 6, 0.0);
        let bad = ring_snapshot(p, 1, 0.0);
        let snaps = vec![good.clone(), bad.clone(), good.clone(), bad];
        assert!((fraction_of_time_full_view(&snaps, p, theta()) - 0.5).abs() < 1e-12);
        assert!(!always_full_view(&snaps, p, theta()));
        assert!(eventually_full_view(&snaps, p, theta()));
    }

    #[test]
    fn always_and_never() {
        let p = Point::new(0.5, 0.5);
        let good: Vec<CameraNetwork> = (0..3)
            .map(|i| ring_snapshot(p, 6, i as f64 * 0.3))
            .collect();
        assert!(always_full_view(&good, p, theta()));
        assert_eq!(fraction_of_time_full_view(&good, p, theta()), 1.0);
        let never: Vec<CameraNetwork> = (0..3).map(|_| ring_snapshot(p, 1, 0.0)).collect();
        assert!(!eventually_full_view(&never, p, theta()));
        assert_eq!(fraction_of_time_full_view(&never, p, theta()), 0.0);
    }

    #[test]
    fn panning_camera_eventually_but_not_always() {
        // A single slowly panning network: use deploy's mobility through
        // the public API of snapshots simulated by phase-shifted rings
        // where only some phases cover the point.
        let p = Point::new(0.5, 0.5);
        // Two cameras opposite each other cover at θ=π/2 but not θ=π/3;
        // six cameras cover at both. Interleave to emulate patrol passes.
        let sparse = ring_snapshot(p, 2, 0.0);
        let dense = ring_snapshot(p, 6, 0.0);
        let snaps = vec![sparse.clone(), sparse, dense];
        assert!(eventually_full_view(&snaps, p, theta()));
        assert!(!always_full_view(&snaps, p, theta()));
        assert!((fraction_of_time_full_view(&snaps, p, theta()) - 1.0 / 3.0).abs() < 1e-12);
    }
}
