//! Critical sensing areas (Definition 2, Theorems 1 and 2) and the
//! related-work formulas of §VII.
//!
//! The CSA is the centralized threshold on the weighted sensing area
//! `s_c = Σ_y c_y s_y` of a heterogeneous network: with `s_c` a constant
//! factor above the CSA the condition holds asymptotically almost surely;
//! a constant factor below, it fails with probability bounded away from
//! zero.
//!
//! Formula provenance: the displayed equations in the available text are
//! OCR-corrupted; the forms implemented here are the unique reconstruction
//! consistent with every internal check in the paper (the `θ = π`
//! degeneration to `(ln n + ln ln n)/n`, the ×2 necessary/sufficient gap
//! of §VI-C, and the `Θ((ln n + ln ln n)/n)` order of Lemma 3). See
//! DESIGN.md §2.

use crate::numeric::{ln_ln, one_minus_root_complement};
use crate::theta::EffectiveAngle;
use std::f64::consts::PI;

/// Validates the population size for the asymptotic formulas.
///
/// # Panics
///
/// Panics if `n < 3` (`ln ln n` would be non-positive).
fn checked_n(n: usize) -> f64 {
    assert!(n >= 3, "asymptotic CSA formulas need n >= 3, got {n}");
    n as f64
}

/// `δ(n) = 1/(n ln n)` — the per-grid-point failure budget when the dense
/// grid has `m = n ln n` points.
fn delta(n: f64) -> f64 {
    1.0 / (n * n.ln())
}

/// **Theorem 1.** The critical sensing area for the *necessary* condition
/// of full-view coverage under uniform deployment:
///
/// `s_{N,c}(n) = −(π/(θn)) · ln(1 − (1 − 1/(n ln n))^{1/K_N})`,
/// with `K_N = ⌈π/θ⌉`.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// use fullview_core::{csa_necessary, EffectiveAngle};
/// use std::f64::consts::PI;
///
/// let theta = EffectiveAngle::new(PI / 4.0)?;
/// // CSA shrinks as the network grows (Lemma 3 / Fig. 8):
/// assert!(csa_necessary(10_000, theta) < csa_necessary(1_000, theta));
/// # Ok::<(), fullview_core::CoreError>(())
/// ```
#[must_use]
pub fn csa_necessary(n: usize, theta: EffectiveAngle) -> f64 {
    let nf = checked_n(n);
    let k = theta.necessary_sector_count();
    let inner = one_minus_root_complement(delta(nf), k);
    -(PI / (theta.radians() * nf)) * inner.ln()
}

/// **Theorem 2.** The critical sensing area for the *sufficient* condition
/// of full-view coverage under uniform deployment:
///
/// `s_{S,c}(n) = −(2π/(θn)) · ln(1 − (1 − 1/(n ln n))^{1/K_S})`,
/// with `K_S = ⌈2π/θ⌉`.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn csa_sufficient(n: usize, theta: EffectiveAngle) -> f64 {
    let nf = checked_n(n);
    let k = theta.sufficient_sector_count();
    let inner = one_minus_root_complement(delta(nf), k);
    -(2.0 * PI / (theta.radians() * nf)) * inner.ln()
}

/// The CSA for plain 1-coverage, `(ln n + ln ln n)/n` — both the `θ = π`
/// degeneration of [`csa_necessary`] (§VII-A) and `π R²(n)` for the
/// critical ESR `R(n)` of Wang et al. \[18\].
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn csa_one_coverage(n: usize) -> f64 {
    let nf = checked_n(n);
    (nf.ln() + ln_ln(n)) / nf
}

/// The critical equivalent sensing radius of \[18\], Theorem 4.1:
/// `R(n) = sqrt((ln n + ln ln n)/(π n))`. A disc sensor with this radius
/// has sensing area exactly [`csa_one_coverage`]`(n)`.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn critical_esr(n: usize) -> f64 {
    (csa_one_coverage(n) / PI).sqrt()
}

/// Kumar et al.'s sufficient per-sensor sensing area for asymptotic
/// `k`-coverage by disc sensors (§VII-B, eq. (21) with `u(n)` dropped):
/// `s_K(n) = (ln n + k ln ln n)/n`.
///
/// # Panics
///
/// Panics if `n < 3` or `k == 0`.
#[must_use]
pub fn kumar_k_coverage_area(n: usize, k: usize) -> f64 {
    assert!(k >= 1, "coverage multiplicity must be at least 1");
    let nf = checked_n(n);
    (nf.ln() + k as f64 * ln_ln(n)) / nf
}

/// Definition 2 as a predicate family: how a measured weighted sensing
/// area `s_c` relates to the necessary/sufficient CSA thresholds at
/// `(n, θ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsaRegime {
    /// `s_c < s_{N,c}` — full-view coverage asymptotically fails.
    BelowNecessary,
    /// `s_{N,c} ≤ s_c < s_{S,c}` — the indeterminate band of §VI-C, where
    /// the outcome depends on the actual deployment.
    Indeterminate,
    /// `s_c ≥ s_{S,c}` — full-view coverage asymptotically guaranteed.
    AboveSufficient,
}

/// Classifies a weighted sensing area against the two CSA thresholds —
/// the paper's headline design guidance (§VI-C): below `s_{N,c}` the
/// region cannot be full-view covered, above `s_{S,c}` it surely is, and
/// in between "whether the area is full view covered is a random event".
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn classify_csa(s_c: f64, n: usize, theta: EffectiveAngle) -> CsaRegime {
    if s_c < csa_necessary(n, theta) {
        CsaRegime::BelowNecessary
    } else if s_c < csa_sufficient(n, theta) {
        CsaRegime::Indeterminate
    } else {
        CsaRegime::AboveSufficient
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    #[test]
    fn theta_pi_degenerates_to_one_coverage() {
        // §VII-A: s_{N,c}(n) at θ = π equals (ln n + ln ln n)/n exactly.
        for n in [10, 100, 1000, 100_000] {
            let a = csa_necessary(n, theta(PI));
            let b = csa_one_coverage(n);
            assert!((a - b).abs() / b < 1e-12, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn esr_matches_one_coverage_area() {
        for n in [10, 1000, 1_000_000] {
            let r = critical_esr(n);
            assert!((PI * r * r - csa_one_coverage(n)).abs() < 1e-15);
        }
    }

    #[test]
    fn sufficient_roughly_double_necessary() {
        // §VI-C: "Approximately, s_{S,c}(n) is two times of s_{N,c}(n)".
        for n in [1000usize, 10_000, 100_000] {
            for t in [0.1 * PI, 0.25 * PI, 0.5 * PI] {
                let th = theta(t);
                let ratio = csa_sufficient(n, th) / csa_necessary(n, th);
                assert!((1.6..2.4).contains(&ratio), "n={n}, θ={t}: ratio {ratio}");
            }
        }
    }

    #[test]
    fn necessary_strictly_below_sufficient() {
        for n in [10usize, 100, 1000, 10_000] {
            for i in 1..=10 {
                let th = theta(i as f64 * PI / 10.0);
                assert!(
                    csa_necessary(n, th) < csa_sufficient(n, th),
                    "n={n}, θ={th}"
                );
            }
        }
    }

    #[test]
    fn csa_decreases_in_n() {
        // Fig. 8: CSA falls as the network grows.
        let th = theta(PI / 4.0);
        let mut prev_n = f64::INFINITY;
        let mut prev_s = f64::INFINITY;
        for n in [100usize, 300, 1000, 3000, 10_000, 100_000] {
            let sn = csa_necessary(n, th);
            let ss = csa_sufficient(n, th);
            assert!(sn < prev_n && ss < prev_s, "not decreasing at n={n}");
            prev_n = sn;
            prev_s = ss;
        }
    }

    #[test]
    fn csa_decreases_in_theta() {
        // Fig. 7: smaller effective angle (stricter frontal-view demand)
        // requires larger sensing area.
        let n = 1000;
        let mut prev_n = f64::INFINITY;
        let mut prev_s = f64::INFINITY;
        for i in 1..=10 {
            let th = theta(i as f64 * 0.05 * PI);
            let sn = csa_necessary(n, th);
            let ss = csa_sufficient(n, th);
            assert!(sn < prev_n && ss <= prev_s, "not decreasing at θ={th}");
            prev_n = sn;
            prev_s = ss;
        }
    }

    #[test]
    fn csa_inverse_proportional_to_theta_for_large_n() {
        // §VI-B: s_c(n) ∝ 1/θ when n is large. Compare θ and θ/2 at fixed
        // large n, away from ceil discontinuities.
        let n = 10_000_000;
        let t1 = theta(0.4 * PI);
        let t2 = theta(0.2 * PI);
        let ratio = csa_necessary(n, t2) / csa_necessary(n, t1);
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn csa_order_matches_lemma3() {
        // Lemma 3: s_c = Θ((ln n + ln ln n)/n). Check the ratio to that
        // order stays bounded over four decades.
        let th = theta(PI / 4.0);
        for n in [100usize, 1000, 10_000, 100_000, 1_000_000] {
            let order = csa_one_coverage(n);
            let ratio = csa_necessary(n, th) / order;
            assert!(
                (0.5..=10.0).contains(&ratio),
                "n={n}: ratio {ratio} escapes Θ-band"
            );
        }
    }

    #[test]
    fn fig8_anchor_sufficient_csa_near_half_at_n_100() {
        // §VI-B / Fig. 8: "the requirement ... is extremely large when
        // n = 100 (about 0.5 in sufficient condition ...)" at θ = π/4.
        let s = csa_sufficient(100, theta(PI / 4.0));
        assert!((0.3..0.7).contains(&s), "s_S(100) = {s}");
    }

    #[test]
    fn kumar_area_reproduces_eq21() {
        let n = 1000;
        let got = kumar_k_coverage_area(n, 3);
        let nf = n as f64;
        let want = (nf.ln() + 3.0 * nf.ln().ln()) / nf;
        assert!((got - want).abs() < 1e-15);
    }

    #[test]
    fn necessary_csa_dominates_kumar_k_coverage() {
        // §VII-B: s_{N,c}(n) ≥ s_K(n) with k = ⌈π/θ⌉ — full-view coverage
        // is more demanding than the matching k-coverage.
        for n in [100usize, 1000, 10_000, 100_000] {
            for t in [0.1 * PI, 0.25 * PI, 0.4 * PI, 0.5 * PI, PI] {
                let th = theta(t);
                let k = th.necessary_sector_count();
                assert!(
                    csa_necessary(n, th) >= kumar_k_coverage_area(n, k) * 0.999,
                    "n={n}, θ={t}: {} < {}",
                    csa_necessary(n, th),
                    kumar_k_coverage_area(n, k)
                );
            }
        }
    }

    #[test]
    fn classification_bands() {
        let n = 1000;
        let th = theta(PI / 4.0);
        let sn = csa_necessary(n, th);
        let ss = csa_sufficient(n, th);
        assert_eq!(classify_csa(sn * 0.5, n, th), CsaRegime::BelowNecessary);
        assert_eq!(
            classify_csa((sn + ss) / 2.0, n, th),
            CsaRegime::Indeterminate
        );
        assert_eq!(classify_csa(ss * 1.5, n, th), CsaRegime::AboveSufficient);
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn small_n_panics() {
        let _ = csa_necessary(2, theta(PI / 4.0));
    }
}
