//! The effective angle `θ` of full-view coverage.

use crate::error::CoreError;
use crate::numeric::tolerant_ceil;
use std::f64::consts::PI;
use std::fmt;

/// The effective angle `θ ∈ (0, π]` of Definition 1: a facing direction
/// `d⃗` is safe if some covering camera's viewed direction lies within `θ`
/// of `d⃗`.
///
/// Small `θ` demands near-frontal captures (high recognition quality);
/// `θ = π` degenerates full-view coverage into plain 1-coverage (§VII-A).
/// The type enforces the valid range once, so every downstream formula can
/// take it by value without re-validating.
///
/// # Examples
///
/// ```
/// use fullview_core::EffectiveAngle;
/// use std::f64::consts::PI;
///
/// let theta = EffectiveAngle::new(PI / 4.0)?;
/// // The paper's sector counts: ⌈π/θ⌉ for the necessary condition,
/// // ⌈2π/θ⌉ for the sufficient one.
/// assert_eq!(theta.necessary_sector_count(), 4);
/// assert_eq!(theta.sufficient_sector_count(), 8);
/// # Ok::<(), fullview_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct EffectiveAngle(f64);

impl EffectiveAngle {
    /// Creates an effective angle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidEffectiveAngle`] unless
    /// `theta ∈ (0, π]`.
    pub fn new(theta: f64) -> Result<Self, CoreError> {
        if !theta.is_finite() || theta <= 0.0 || theta > PI + 1e-12 {
            return Err(CoreError::InvalidEffectiveAngle { theta });
        }
        Ok(EffectiveAngle(theta.min(PI)))
    }

    /// The angle in radians, guaranteed in `(0, π]`.
    #[must_use]
    pub fn radians(self) -> f64 {
        self.0
    }

    /// Number of sectors in the *necessary*-condition construction of
    /// §III: `⌈π/θ⌉` closed sectors of width `2θ` (including the
    /// bisector-aligned overlap sector when `2θ` does not divide `2π`).
    ///
    /// This is also the minimum number of cameras that must cover a
    /// full-view-covered point, linking full-view coverage to
    /// `⌈π/θ⌉`-coverage (§VII-B).
    #[must_use]
    pub fn necessary_sector_count(self) -> usize {
        tolerant_ceil(PI / self.0)
    }

    /// Number of sectors in the *sufficient*-condition construction of
    /// §IV: `⌈2π/θ⌉` closed sectors of width `θ`.
    #[must_use]
    pub fn sufficient_sector_count(self) -> usize {
        tolerant_ceil(2.0 * PI / self.0)
    }

    /// The maximal angular width `2θ` a gap between consecutive viewed
    /// directions may have around a full-view covered point.
    #[must_use]
    pub fn max_gap(self) -> f64 {
        2.0 * self.0
    }
}

impl fmt::Display for EffectiveAngle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ={:.6}rad", self.0)
    }
}

impl TryFrom<f64> for EffectiveAngle {
    type Error = CoreError;

    fn try_from(theta: f64) -> Result<Self, CoreError> {
        EffectiveAngle::new(theta)
    }
}

impl From<EffectiveAngle> for f64 {
    fn from(t: EffectiveAngle) -> f64 {
        t.radians()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_range() {
        assert!(EffectiveAngle::new(0.01).is_ok());
        assert!(EffectiveAngle::new(PI).is_ok());
        assert!(EffectiveAngle::new(PI / 2.0).is_ok());
    }

    #[test]
    fn rejects_invalid() {
        assert!(EffectiveAngle::new(0.0).is_err());
        assert!(EffectiveAngle::new(-0.1).is_err());
        assert!(EffectiveAngle::new(PI + 0.01).is_err());
        assert!(EffectiveAngle::new(f64::NAN).is_err());
    }

    #[test]
    fn sector_counts_match_paper_examples() {
        // θ = π: necessary degenerates to a single sector (§VII-A).
        let t = EffectiveAngle::new(PI).unwrap();
        assert_eq!(t.necessary_sector_count(), 1);
        assert_eq!(t.sufficient_sector_count(), 2);

        // θ = π/4 divides evenly: ⌈π/θ⌉ = 4, ⌈2π/θ⌉ = 8.
        let t = EffectiveAngle::new(PI / 4.0).unwrap();
        assert_eq!(t.necessary_sector_count(), 4);
        assert_eq!(t.sufficient_sector_count(), 8);

        // θ = 0.3π: π/θ = 3.33… → 4 sectors; 2π/θ = 6.67… → 7.
        let t = EffectiveAngle::new(0.3 * PI).unwrap();
        assert_eq!(t.necessary_sector_count(), 4);
        assert_eq!(t.sufficient_sector_count(), 7);
    }

    #[test]
    fn exact_division_has_no_phantom_extra_sector() {
        // π/(π/6) = 6 exactly up to float error; the tolerant ceiling must
        // not return 7.
        let t = EffectiveAngle::new(PI / 6.0).unwrap();
        assert_eq!(t.necessary_sector_count(), 6);
        assert_eq!(t.sufficient_sector_count(), 12);
    }

    #[test]
    fn conversions() {
        let t: EffectiveAngle = (PI / 3.0).try_into().unwrap();
        let back: f64 = t.into();
        assert!((back - PI / 3.0).abs() < 1e-15);
    }

    #[test]
    fn max_gap_is_two_theta() {
        let t = EffectiveAngle::new(0.5).unwrap();
        assert!((t.max_gap() - 1.0).abs() < 1e-15);
    }
}
