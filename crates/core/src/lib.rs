//! # fullview-core
//!
//! The primary contribution of Wu & Wang, *"Achieving Full View Coverage
//! with Randomly-Deployed Heterogeneous Camera Sensors"* (ICDCS 2012),
//! implemented as a library:
//!
//! * **Definition 1 — full-view coverage.** Exact per-point checking via
//!   two independent algorithms ([`is_full_view_covered`] /
//!   [`is_full_view_covered_arcset`]), safe/unsafe direction analysis
//!   ([`safe_directions`], [`unsafe_directions`]).
//! * **§III / §IV — geometric conditions.** The `2θ`- and `θ`-sector
//!   partitions ([`SectorPartition`]) and per-point predicates
//!   ([`meets_necessary_condition`], [`meets_sufficient_condition`]).
//! * **Definition 2, Theorems 1 & 2 — critical sensing areas.**
//!   [`csa_necessary`], [`csa_sufficient`], the indeterminate band
//!   classifier [`classify_csa`], and the §VII related-work formulas
//!   ([`csa_one_coverage`], [`critical_esr`], [`kumar_k_coverage_area`]).
//! * **Eqs. (2)–(4), (13)–(15) — uniform-deployment probabilities.**
//!   [`prob_point_fails_necessary`], [`prob_point_fails_sufficient`],
//!   [`grid_failure_bounds`].
//! * **Theorems 3 & 4 — Poisson probabilities.**
//!   [`prob_point_meets_necessary_poisson`],
//!   [`prob_point_meets_sufficient_poisson`], with both the paper's
//!   truncated series ([`q_series`]) and the closed form
//!   ([`q_closed_form`]).
//! * **§III-A — dense-grid area coverage.** [`dense_grid`],
//!   [`evaluate_grid`], [`GridCoverageReport`].
//! * **§VII-B — k-coverage comparison.** [`is_k_covered`], [`implied_k`].
//! * **§VIII future work.** Barrier full-view coverage
//!   ([`barrier_full_view`]) and the probabilistic sensing extension
//!   ([`ProbabilisticModel`], [`is_full_view_covered_with_confidence`]).
//!
//! # Quick start
//!
//! ```
//! use fullview_core::{csa_sufficient, classify_csa, CsaRegime, EffectiveAngle};
//! use std::f64::consts::PI;
//!
//! // How much weighted sensing area does a 1000-camera uniform deployment
//! // need so a θ = π/4 full-view coverage is asymptotically guaranteed?
//! let theta = EffectiveAngle::new(PI / 4.0)?;
//! let s_needed = csa_sufficient(1000, theta);
//! assert_eq!(
//!     classify_csa(1.1 * s_needed, 1000, theta),
//!     CsaRegime::AboveSufficient
//! );
//! # Ok::<(), fullview_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod barrier;
pub mod canon;
mod conditions;
mod csa;
mod densegrid;
mod dependence;
mod design;
mod engine;
mod error;
mod exact;
mod fullview;
mod holes;
mod kcov;
mod kfullview;
mod mask;
pub mod numeric;
mod path;
mod poisson_theory;
mod probabilistic;
mod render;
mod temporal;
mod theta;
mod uniform_theory;

pub use barrier::{barrier_full_view, BarrierReport};
pub use conditions::{
    cameras_sufficient, meets_necessary_condition, meets_sufficient_condition,
    min_cameras_necessary, ConditionKind, SectorPartition,
};
pub use csa::{
    classify_csa, critical_esr, csa_necessary, csa_one_coverage, csa_sufficient,
    kumar_k_coverage_area, CsaRegime,
};
pub use densegrid::{
    dense_grid, dense_grid_point_count, evaluate_dense_grid, evaluate_grid, GridCoverageReport,
    GridEvaluator, PointFlags,
};
pub use dependence::{
    independence_approximation_error, partition_is_disjoint, prob_point_meets_dependent,
};
pub use design::{
    max_cameras_below_necessary, min_cameras_for_guarantee, required_area_for_expected_fraction,
};
pub use engine::{
    for_each_grid_point, sweep_flags_range, sweep_grid, sweep_grid_range, use_tiled, CoverageQuery,
    DirtySet, GridTiling, IncrementalSweep, SweepDelta,
};
pub use error::CoreError;
pub use exact::{
    covering_count_pmf_poisson, covering_count_pmf_uniform, prob_point_full_view_poisson,
    prob_point_full_view_uniform, stevens_coverage_probability,
};
pub use fullview::{
    analyze_point, is_direction_safe, is_full_view_covered, is_full_view_covered_arcset,
    largest_circular_gap, safe_directions, safe_fraction, unsafe_directions, CoverageView,
    PointAnalyzer, PointCoverage,
};
pub use holes::{
    find_holes, full_view_mask_range, full_view_mask_range_with, holes_from_mask, Hole, HoleReport,
};
pub use kcov::{implied_k, is_k_covered, k_covered_fraction, min_coverage_over_grid};
pub use kfullview::{
    count_k_view_range, for_each_view_multiplicity, is_k_full_view_covered, min_arc_depth,
    prob_point_meets_necessary_k_poisson, view_multiplicity,
};
pub use mask::{PointVerdict, ScreenMode, ScreenStats, SectorMaskKernel};
pub use path::{evaluate_path, ExposedStretch, Path, PathCoverageReport};
pub use poisson_theory::{
    prob_point_meets, prob_point_meets_necessary_poisson, prob_point_meets_sufficient_poisson,
    q_closed_form, q_series, Condition,
};
pub use render::{
    coverage_glyphs_range, coverage_glyphs_range_with, coverage_map_from_glyphs, coverage_map_text,
    hole_report_text, kfull_text,
};

pub use probabilistic::{
    confident_covered_fraction, confident_point_coverage, confident_point_coverage_with,
    is_full_view_covered_with_confidence, ProbabilisticModel,
};
pub use temporal::{always_full_view, eventually_full_view, fraction_of_time_full_view};
pub use theta::EffectiveAngle;
pub use uniform_theory::{
    expected_necessary_fraction, expected_sufficient_fraction, grid_failure_bounds,
    prob_point_fails_necessary, prob_point_fails_sufficient, sector_miss_probability_necessary,
    sector_miss_probability_sufficient, GridFailureBounds,
};
