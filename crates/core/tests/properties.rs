//! Property-based tests for the coverage algorithms and theory.
//!
//! The crown jewels are the implication-chain properties on random
//! networks: sufficient condition ⇒ full-view coverage ⇒ necessary
//! condition ⇒ `⌈π/θ⌉`-coverage, and the agreement of the two independent
//! full-view algorithms.

use fullview_core::{
    analyze_point, csa_necessary, csa_sufficient, implied_k, is_direction_safe,
    is_full_view_covered, is_full_view_covered_arcset, is_k_covered, meets_necessary_condition,
    meets_sufficient_condition, prob_point_fails_necessary, prob_point_fails_sufficient,
    prob_point_meets_necessary_poisson, prob_point_meets_sufficient_poisson, q_closed_form,
    q_series, safe_directions, Condition, EffectiveAngle,
};
use fullview_geom::{Angle, Point, Torus};
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile, SensorSpec};
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

fn camera_strategy() -> impl Strategy<Value = Camera> {
    (0.0..1.0f64, 0.0..1.0f64, 0.0..TAU, 0.02..0.45f64, 0.1..TAU).prop_map(
        |(x, y, facing, r, phi)| {
            Camera::new(
                Point::new(x, y),
                Angle::new(facing),
                SensorSpec::new(r, phi).unwrap(),
                GroupId(0),
            )
        },
    )
}

fn network_strategy(max: usize) -> impl Strategy<Value = CameraNetwork> {
    prop::collection::vec(camera_strategy(), 0..max)
        .prop_map(|cams| CameraNetwork::new(Torus::unit(), cams))
}

fn theta_strategy() -> impl Strategy<Value = EffectiveAngle> {
    (0.05..=1.0f64).prop_map(|f| EffectiveAngle::new(f * PI).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------- algorithm agreement ----------

    #[test]
    fn gap_and_arcset_algorithms_agree(
        net in network_strategy(40),
        theta in theta_strategy(),
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        let p = Point::new(px, py);
        prop_assert_eq!(
            is_full_view_covered(&net, p, theta),
            is_full_view_covered_arcset(&net, p, theta),
            "algorithms disagree at {} with {}", p, theta
        );
    }

    #[test]
    fn full_view_iff_every_probed_direction_safe(
        net in network_strategy(30),
        theta in theta_strategy(),
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        let p = Point::new(px, py);
        let covered = is_full_view_covered(&net, p, theta);
        if covered {
            // Probe a fan of directions: all must be safe.
            for i in 0..24 {
                let d = Angle::new(i as f64 * TAU / 24.0);
                prop_assert!(
                    is_direction_safe(&net, p, theta, d),
                    "covered point has unsafe direction {d}"
                );
            }
        } else {
            // The bisector of the largest hole must be unsafe.
            let holes = fullview_core::unsafe_directions(&net, p, theta);
            prop_assert!(!holes.is_empty());
            let widest = holes
                .iter()
                .max_by(|a, b| a.width().partial_cmp(&b.width()).unwrap())
                .unwrap();
            if widest.width() > 1e-6 {
                prop_assert!(
                    !is_direction_safe(&net, p, theta, widest.bisector()),
                    "hole bisector reported safe"
                );
            }
        }
    }

    // ---------- implication chain ----------

    #[test]
    fn implication_chain_on_random_networks(
        net in network_strategy(60),
        theta in theta_strategy(),
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
        start in 0.0..TAU,
    ) {
        let p = Point::new(px, py);
        let start = Angle::new(start);
        let sufficient = meets_sufficient_condition(&net, p, theta, start);
        let full_view = is_full_view_covered(&net, p, theta);
        let necessary = meets_necessary_condition(&net, p, theta, start);
        let k_cov = is_k_covered(&net, p, implied_k(theta));
        if sufficient {
            prop_assert!(full_view, "sufficient ⇒ full-view violated at {p}, {theta}");
        }
        if full_view {
            prop_assert!(necessary, "full-view ⇒ necessary violated at {p}, {theta}");
            // Full-view coverage forces ⌈π/θ⌉ cameras: c gaps of ≤ 2θ each
            // must close the 2π circle. (The sector-occupancy necessary
            // condition alone does NOT imply this when the overlap sector
            // intersects sector 1 at large θ — see kcov module docs.)
            prop_assert!(k_cov, "full-view ⇒ k-coverage violated at {p}, {theta}");
        }
    }

    #[test]
    fn necessary_condition_invariant_to_start_line_when_full_view(
        net in network_strategy(40),
        theta in theta_strategy(),
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
        s1 in 0.0..TAU,
        s2 in 0.0..TAU,
    ) {
        // Full-view coverage implies the necessary condition for *every*
        // start line (§III notes the construction can rotate freely).
        let p = Point::new(px, py);
        if is_full_view_covered(&net, p, theta) {
            prop_assert!(meets_necessary_condition(&net, p, theta, Angle::new(s1)));
            prop_assert!(meets_necessary_condition(&net, p, theta, Angle::new(s2)));
        }
    }

    // ---------- analyze_point consistency ----------

    #[test]
    fn analysis_counts_consistent(
        net in network_strategy(40),
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        let p = Point::new(px, py);
        let a = analyze_point(&net, p);
        let direct = net.coverage_count(p);
        prop_assert_eq!(a.covering_cameras, direct);
        let dir_count = a.viewed_directions.len() + usize::from(a.has_colocated_camera);
        // Co-located cameras beyond the first all collapse into the flag.
        prop_assert!(dir_count <= a.covering_cameras || a.covering_cameras == 0);
    }

    #[test]
    fn analyze_point_into_matches_analyze_point(
        net in network_strategy(40),
        theta in theta_strategy(),
        points in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..8),
    ) {
        // One analyzer reused across all points (the hot-loop usage): the
        // borrowed view must reproduce the owned analysis exactly,
        // including derived predicates.
        let mut analyzer = fullview_core::PointAnalyzer::new();
        for (px, py) in points {
            let p = Point::new(px, py);
            let owned = analyze_point(&net, p);
            let view = analyzer.analyze_point_into(&net, p);
            prop_assert_eq!(view.is_full_view(theta), owned.is_full_view(theta));
            prop_assert_eq!(view.critical_theta(), owned.critical_theta());
            prop_assert_eq!(view.to_owned(), owned);
        }
    }

    #[test]
    fn safe_measure_bounded_by_arcs(
        net in network_strategy(30),
        theta in theta_strategy(),
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        let p = Point::new(px, py);
        let a = analyze_point(&net, p);
        let set = safe_directions(&net, p, theta);
        let bound = (a.viewed_directions.len() as f64) * theta.max_gap();
        if !a.has_colocated_camera {
            prop_assert!(set.measure() <= bound + 1e-6);
        }
        prop_assert!(set.measure() <= TAU + 1e-9);
    }

    // ---------- theory formulas ----------

    #[test]
    fn csa_gap_and_positivity(n in 3usize..2_000_000, f in 0.05..=1.0f64) {
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let sn = csa_necessary(n, theta);
        let ss = csa_sufficient(n, theta);
        prop_assert!(sn > 0.0 && sn.is_finite());
        prop_assert!(ss > sn, "s_S={ss} <= s_N={sn} at n={n}, θ={theta}");
    }

    #[test]
    fn uniform_failure_probabilities_valid_and_ordered(
        s in 1e-5..0.2f64,
        n in 10usize..5_000,
        f in 0.05..=1.0f64,
    ) {
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let profile = NetworkProfile::homogeneous(
            SensorSpec::with_sensing_area(s, PI / 2.0).unwrap(),
        );
        let pn = prob_point_fails_necessary(&profile, n, theta);
        let ps = prob_point_fails_sufficient(&profile, n, theta);
        prop_assert!((0.0..=1.0).contains(&pn));
        prop_assert!((0.0..=1.0).contains(&ps));
        prop_assert!(pn <= ps + 1e-12, "P(F_N)={pn} > P(F_S)={ps}");
    }

    #[test]
    fn poisson_probabilities_valid_and_ordered(
        s in 1e-5..0.2f64,
        density in 1.0..5_000.0f64,
        f in 0.05..=1.0f64,
    ) {
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let profile = NetworkProfile::homogeneous(
            SensorSpec::with_sensing_area(s, PI / 3.0).unwrap(),
        );
        let pn = prob_point_meets_necessary_poisson(&profile, density, theta);
        let ps = prob_point_meets_sufficient_poisson(&profile, density, theta);
        prop_assert!((0.0..=1.0).contains(&pn));
        prop_assert!((0.0..=1.0).contains(&ps));
        prop_assert!(pn + 1e-12 >= ps, "P_N={pn} < P_S={ps}");
    }

    #[test]
    fn poisson_series_approaches_closed_form(
        density in 1.0..2_000.0f64,
        r in 0.02..0.3f64,
        phi in 0.1..TAU,
        f in 0.05..=1.0f64,
    ) {
        let theta = EffectiveAngle::new(f * PI).unwrap();
        for cond in [Condition::Necessary, Condition::Sufficient] {
            let closed = q_closed_form(cond, theta, density, r, phi);
            let series = q_series(cond, theta, density, r, phi, 2000);
            prop_assert!((closed - series).abs() < 1e-6,
                "{cond:?}: closed {closed} vs series {series}");
        }
    }
}

/// Deterministic cross-check against uniform random deployments: build a
/// deployment with `fullview-deploy` and verify the Monte-Carlo fraction
/// of points meeting the necessary condition is close to eq. (2).
#[test]
fn uniform_theory_matches_monte_carlo_fraction() {
    use fullview_deploy::deploy_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let theta = EffectiveAngle::new(PI / 4.0).unwrap();
    let n = 900;
    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.012, PI / 2.0).unwrap());
    let expect_fail = prob_point_fails_necessary(&profile, n, theta);

    let mut rng = StdRng::seed_from_u64(2024);
    let mut fails = 0usize;
    let mut total = 0usize;
    for trial in 0..30 {
        let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng)
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        for i in 0..40 {
            // Fixed probe points spread over the square.
            let p = Point::new(
                (i as f64 * 0.618_033_98) % 1.0,
                (i as f64 * 0.414_213_56) % 1.0,
            );
            total += 1;
            if !meets_necessary_condition(&net, p, theta, Angle::ZERO) {
                fails += 1;
            }
        }
    }
    let measured = fails as f64 / total as f64;
    // Binomial CI: with 1200 samples, σ ≈ sqrt(p(1-p)/1200).
    let sigma = (expect_fail * (1.0 - expect_fail) / total as f64).sqrt();
    assert!(
        (measured - expect_fail).abs() < 5.0 * sigma + 0.01,
        "measured {measured} vs theory {expect_fail} (σ={sigma})"
    );
}

// ---------- extension modules ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stevens_is_probability_and_monotone(
        n_arcs in 0usize..200,
        a in 0.0..1.5f64,
    ) {
        use fullview_core::stevens_coverage_probability as stevens;
        let p = stevens(n_arcs, a);
        prop_assert!((0.0..=1.0).contains(&p));
        // Monotone in arc count.
        let p_more = stevens(n_arcs + 1, a);
        prop_assert!(p_more >= p - 1e-9);
        // Below the deterministic threshold N·a < 1, coverage is impossible.
        if (n_arcs as f64) * a < 1.0 - 1e-9 {
            prop_assert!(p < 1e-9, "N={n_arcs}, a={a}: p={p}");
        }
    }

    #[test]
    fn exact_probability_respects_bracket(
        s in 1e-4..0.1f64,
        n in 50usize..3000,
        f in 0.1..=1.0f64,
    ) {
        use fullview_core::{
            prob_point_fails_necessary, prob_point_fails_sufficient,
            prob_point_full_view_uniform,
        };
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let profile = NetworkProfile::homogeneous(
            SensorSpec::with_sensing_area(s, PI / 2.0).unwrap(),
        );
        let exact = prob_point_full_view_uniform(&profile, n, theta);
        prop_assert!((0.0..=1.0).contains(&exact));
        let lower = 1.0 - prob_point_fails_sufficient(&profile, n, theta);
        let upper = 1.0 - prob_point_fails_necessary(&profile, n, theta);
        prop_assert!(exact <= upper + 1e-6, "exact {exact} > upper {upper}");
        // The lower bound uses the independence approximation, which can
        // exceed the true sufficient probability by a second-order term;
        // allow a small tolerance.
        prop_assert!(exact >= lower - 1e-3, "exact {exact} < lower {lower}");
    }

    #[test]
    fn view_multiplicity_matches_brute_force(
        net in network_strategy(30),
        f in 0.1..=1.0f64,
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        use fullview_core::view_multiplicity;
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let p = Point::new(px, py);
        let sweep = view_multiplicity(&net, p, theta);
        // Brute force: probe a uniform fan PLUS every arc endpoint ± ε —
        // depth is piecewise constant with breakpoints exactly at the
        // endpoints, so endpoint-adjacent probes see every depth level
        // (uniform probes alone can miss sliver gaps).
        let analysis = analyze_point(&net, p);
        let mut probes: Vec<fullview_geom::Angle> = (0..720)
            .map(|i| fullview_geom::Angle::new(i as f64 * TAU / 720.0))
            .collect();
        for v in &analysis.viewed_directions {
            for delta in [-1e-7, 1e-7] {
                probes.push(v.rotate(theta.radians() + delta));
                probes.push(v.rotate(-theta.radians() + delta));
            }
        }
        let mut brute_lo = usize::MAX;
        let mut brute_hi = usize::MAX;
        for d in probes {
            let base = usize::from(analysis.has_colocated_camera);
            let hi = base + analysis
                .viewed_directions
                .iter()
                .filter(|v| v.distance(d) <= theta.radians() + 1e-6)
                .count();
            let lo = base + analysis
                .viewed_directions
                .iter()
                .filter(|v| v.distance(d) <= theta.radians() - 1e-6)
                .count();
            brute_hi = brute_hi.min(hi);
            brute_lo = brute_lo.min(lo);
        }
        // The sweep must sit between the two sampled brackets.
        prop_assert!(
            sweep >= brute_lo.min(brute_hi) && sweep <= brute_hi.max(brute_lo) ,
            "sweep {sweep} outside brute bracket [{brute_lo}, {brute_hi}] at {p}"
        );
    }

    #[test]
    fn k_fullview_chain_on_random_networks(
        net in network_strategy(40),
        f in 0.1..=1.0f64,
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        use fullview_core::{is_k_full_view_covered, view_multiplicity};
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let p = Point::new(px, py);
        let m = view_multiplicity(&net, p, theta);
        // k ≤ m covered, k > m not.
        for k in 0..=m.min(5) {
            prop_assert!(is_k_full_view_covered(&net, p, theta, k));
        }
        prop_assert!(!is_k_full_view_covered(&net, p, theta, m + 1));
        // k = 1 coincides with plain full-view.
        prop_assert_eq!(
            is_k_full_view_covered(&net, p, theta, 1),
            is_full_view_covered(&net, p, theta)
        );
    }

    #[test]
    fn dependent_probability_never_exceeds_independent(
        s in 1e-4..0.05f64,
        n in 20usize..2000,
        f in 0.1..=1.0f64,
    ) {
        use fullview_core::{prob_point_meets_dependent, Condition};
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let profile = NetworkProfile::homogeneous(
            SensorSpec::with_sensing_area(s, PI / 2.0).unwrap(),
        );
        let dep = prob_point_meets_dependent(Condition::Necessary, &profile, n, theta);
        let indep = 1.0 - prob_point_fails_necessary(&profile, n, theta);
        prop_assert!((0.0..=1.0).contains(&dep));
        prop_assert!(dep <= indep + 1e-9, "dep {dep} > indep {indep}");
    }

    #[test]
    fn safe_fraction_in_range_and_consistent(
        net in network_strategy(30),
        f in 0.1..=1.0f64,
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        use fullview_core::safe_fraction;
        let theta = EffectiveAngle::new(f * PI).unwrap();
        let p = Point::new(px, py);
        let frac = safe_fraction(&net, p, theta);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&frac));
        if is_full_view_covered(&net, p, theta) {
            prop_assert!(frac >= 1.0 - 1e-6);
        } else {
            prop_assert!(frac < 1.0 + 1e-9);
        }
    }
}
