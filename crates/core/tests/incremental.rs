//! Differential proptest harness for the incremental dirty-tile engine.
//!
//! Random interleavings of `fail`/`move`/`reseed` mutations and repair
//! points, asserting after every repair that the incrementally-maintained
//! [`IncrementalSweep`] report and mask are **bit-identical** to a cold
//! rebuild over the same network — the tentpole invariant of the engine.
//! Shrunk failures persist in `incremental.proptest-regressions`; the
//! deterministic cases at the bottom pin interleavings that exercise each
//! repair path (PR 1 triage pattern: pinned seeds outlive the runner).

use fullview_core::{EffectiveAngle, IncrementalSweep};
use fullview_deploy::deploy_uniform;
use fullview_geom::{Angle, Point, Torus};
use fullview_model::{CameraNetwork, NetworkProfile, SensorSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

/// One step of a mutation/query interleaving. Indices and coordinates are
/// raw random draws; `apply` folds them into valid arguments against the
/// current fleet so every generated sequence is executable.
#[derive(Debug, Clone)]
enum Op {
    /// Remove the camera at `raw % len` (skipped on an empty fleet).
    Fail(usize),
    /// Move the camera at `raw % len` to `(x, y)`.
    Move(usize, f64, f64),
    /// Replace the fleet with a fresh `n`-camera deployment from `seed` —
    /// the geometry-changing mutation the repair must detect.
    Reseed(u64, usize),
    /// A query arrives: repair incrementally and check bit-identity.
    Repair,
}

/// Weighted op mix (the vendored proptest has no `prop_oneof!`): 3/12
/// fail, 4/12 move, 1/12 reseed, 4/12 repair.
fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..12u32,
        0..1_000_000usize,
        0.0..1.0f64,
        0.0..1.0f64,
        0..1_000_000u64,
        20..120usize,
    )
        .prop_map(|(kind, raw, x, y, seed, n)| match kind {
            0..=2 => Op::Fail(raw),
            3..=6 => Op::Move(raw, x, y),
            7 => Op::Reseed(seed, n),
            _ => Op::Repair,
        })
}

fn profile() -> NetworkProfile {
    NetworkProfile::builder()
        .group(SensorSpec::new(0.09, PI / 2.0).unwrap(), 0.6)
        .group(SensorSpec::new(0.16, PI / 3.0).unwrap(), 0.4)
        .build()
        .unwrap()
}

fn deploy(seed: u64, n: usize) -> CameraNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    deploy_uniform(Torus::unit(), &profile(), n, &mut rng).unwrap()
}

fn assert_bit_identical(state: &IncrementalSweep, net: &CameraNetwork, ctx: &str) {
    let cold = IncrementalSweep::new(net, state.theta(), Angle::ZERO, state.grid_side());
    assert_eq!(
        state.report(),
        cold.report(),
        "{ctx}: report drifted from cold sweep"
    );
    assert_eq!(
        state.mask(),
        cold.mask(),
        "{ctx}: mask drifted from cold sweep"
    );
}

/// Applies an op sequence, marking dirt exactly as the service layer does,
/// and checks bit-identity at every repair point and at the end.
fn run_sequence(seed: u64, n0: usize, grid_side: usize, theta: EffectiveAngle, ops: &[Op]) {
    let mut net = deploy(seed, n0);
    let mut state = IncrementalSweep::new(&net, theta, Angle::ZERO, grid_side);
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Fail(raw) => {
                if net.is_empty() {
                    continue;
                }
                let id = raw % net.len();
                let victim = net.cameras()[id];
                assert!(net.remove_camera(id));
                state.mark_disk(victim.position(), victim.spec().radius());
            }
            Op::Move(raw, x, y) => {
                if net.is_empty() {
                    continue;
                }
                let id = raw % net.len();
                let cam = net.cameras()[id];
                let to = Point::new(x, y);
                assert!(net.move_camera(id, to));
                state.mark_disk(cam.position(), cam.spec().radius());
                state.mark_disk(to, cam.spec().radius());
            }
            Op::Reseed(s, n) => {
                net = deploy(s, n);
                state.invalidate();
            }
            Op::Repair => {
                let delta = state.resweep_dirty(&net);
                assert_eq!(
                    &delta.after,
                    state.report(),
                    "step {step}: delta/report mismatch"
                );
                assert_bit_identical(&state, &net, &format!("step {step}"));
            }
        }
    }
    let delta = state.resweep_dirty(&net);
    assert_eq!(&delta.after, state.report(), "final delta/report mismatch");
    assert_bit_identical(&state, &net, "final");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_interleavings_stay_bit_identical(
        seed in 0..1_000_000u64,
        n0 in 10..100usize,
        grid_side in 8..32usize,
        theta_frac in 0.15..0.95f64,
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        let theta = EffectiveAngle::new(theta_frac * PI).unwrap();
        run_sequence(seed, n0, grid_side, theta, &ops);
    }
}

// ---------- pinned deterministic interleavings ----------

/// Every mutation kind back-to-back with no intermediate repair, so one
/// repair digests fail + move dirt and then a reseed forces the rebuild
/// path on the next.
#[test]
fn pinned_fail_move_then_reseed() {
    let theta = EffectiveAngle::new(PI / 4.0).unwrap();
    run_sequence(
        7,
        60,
        24,
        theta,
        &[
            Op::Fail(13),
            Op::Move(5, 0.91, 0.02),
            Op::Repair,
            Op::Reseed(99, 35),
            Op::Move(2, 0.5, 0.5),
            Op::Repair,
        ],
    );
}

/// Shrink a fleet to empty through repeated failures: the index keeps its
/// original geometry while the mask drains to all-false.
#[test]
fn pinned_drain_to_empty_fleet() {
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    let mut ops: Vec<Op> = Vec::new();
    for i in 0..20 {
        ops.push(Op::Fail(i * 3));
        if i % 4 == 0 {
            ops.push(Op::Repair);
        }
    }
    run_sequence(3, 15, 12, theta, &ops);
}

/// Seam-hugging moves with a wide-radius profile: the dirty window wraps
/// every torus seam and may degrade to mark_all.
#[test]
fn pinned_seam_and_wide_radius_moves() {
    let theta = EffectiveAngle::new(PI / 2.0).unwrap();
    run_sequence(
        11,
        25,
        16,
        theta,
        &[
            Op::Move(0, 0.999, 0.001),
            Op::Move(1, 0.0, 0.0),
            Op::Repair,
            Op::Move(2, 0.001, 0.999),
            Op::Repair,
        ],
    );
}

/// Reseed into a much denser fleet (different cell geometry) and keep
/// mutating afterwards — the rebuilt tiling must accept incremental dirt.
#[test]
fn pinned_reseed_then_incremental_again() {
    let theta = EffectiveAngle::new(PI / 4.0).unwrap();
    run_sequence(
        21,
        20,
        28,
        theta,
        &[
            Op::Repair,
            Op::Reseed(5, 110),
            Op::Repair,
            Op::Move(17, 0.25, 0.75),
            Op::Fail(4),
            Op::Repair,
        ],
    );
}
