//! Property tests for the sector-mask kernel layer.
//!
//! Two families:
//!
//! * the angular primitives the two-stage engine leans on —
//!   [`largest_circular_gap`] and [`min_arc_depth`] — pinned against
//!   naive `O(n²)` references over random, duplicated, and
//!   near-wraparound angle sets;
//! * the engine differential: the mask-screened tiled sweep must be
//!   **bit-identical** to the wholesale exact sweep across random
//!   heterogeneous networks, effective angles parked on sector-count
//!   boundaries, arbitrary start lines, and arbitrary ranges.

use fullview_core::{
    count_k_view_range, largest_circular_gap, min_arc_depth, sweep_flags_range, view_multiplicity,
    EffectiveAngle, GridEvaluator, GridTiling,
};
use fullview_geom::{Angle, Point, Torus, UnitGrid, ANGLE_EPS};
use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

// ---------- naive references ----------

/// Quadratic reference for [`largest_circular_gap`]: for every angle,
/// the smallest counter-clockwise step to another angle (computed with
/// the same float expressions the fast path uses — plain difference for
/// an ahead angle, `b + TAU − a` across the seam); the largest gap is
/// the maximum such step.
fn naive_largest_gap(sorted: &[Angle]) -> f64 {
    if sorted.len() < 2 {
        return TAU;
    }
    let mut max_gap: f64 = 0.0;
    for a in sorted {
        let a = a.radians();
        let mut next = TAU;
        for b in sorted {
            let b = b.radians();
            let step = if b > a { b - a } else { b + TAU - a };
            // b == a (the angle itself or an exact duplicate) yields the
            // full circle via the seam expression, never a zero step —
            // duplicates contribute their 0-width gap to the *sorted*
            // scan but can never be the largest gap, so the maxima agree.
            if step < next {
                next = step;
            }
        }
        if next > max_gap {
            max_gap = next;
        }
    }
    max_gap
}

/// Quadratic reference for [`min_arc_depth`]: the depth function is
/// piecewise constant between arc endpoints, so its minimum is attained
/// just after some event angle. For each event `e`, an arc covers the
/// interval right after `e` iff `e`'s circular offset from the arc's
/// start is strictly less than the arc's length — exactly the sweep's
/// "+1 before −1 at equal angles" convention, expressed combinatorially.
fn naive_min_arc_depth(centers: &[Angle], half_width: f64) -> usize {
    if centers.is_empty() {
        return 0;
    }
    if half_width >= TAU / 2.0 - ANGLE_EPS {
        return centers.len();
    }
    let starts: Vec<f64> = centers
        .iter()
        .map(|c| c.rotate(-half_width).radians())
        .collect();
    let ends: Vec<f64> = centers
        .iter()
        .map(|c| c.rotate(half_width + 2.0 * ANGLE_EPS).radians())
        .collect();
    let mut min_depth = usize::MAX;
    for &e in starts.iter().chain(ends.iter()) {
        let mut depth = 0usize;
        for j in 0..centers.len() {
            let len = (ends[j] - starts[j]).rem_euclid(TAU);
            let pos = (e - starts[j]).rem_euclid(TAU);
            if pos < len {
                depth += 1;
            }
        }
        min_depth = min_depth.min(depth);
    }
    min_depth
}

// ---------- strategies ----------

// The vendored proptest shim has no `prop_oneof!` / weighted union, so
// mixture strategies draw a selector integer alongside a unit value and
// pick the branch in `prop_map`.

/// Angle sets biased towards the hard cases: clusters hugging the 0/2π
/// seam and exact duplicates appended to the base set.
fn angle_set_strategy() -> impl Strategy<Value = Vec<Angle>> {
    let element = (0usize..5, 0.0..1.0f64).prop_map(|(sel, u)| match sel {
        0..=2 => u * TAU,            // anywhere on the circle
        3 => u * 1e-7,               // hugging 0
        _ => TAU - 1e-7 * (1.0 - u), // hugging the 2π seam
    });
    (
        prop::collection::vec(element, 0..28),
        prop::collection::vec(0usize..4096, 0..8),
    )
        .prop_map(|(mut vals, dups)| {
            if !vals.is_empty() {
                for d in dups {
                    let v = vals[d % vals.len()];
                    vals.push(v); // exact duplicate
                }
            }
            vals.into_iter().map(Angle::new).collect()
        })
}

fn half_width_strategy() -> impl Strategy<Value = f64> {
    (0usize..6, 0.0..1.0f64).prop_map(|(sel, u)| match sel {
        0..=3 => 0.001 + u * (PI - 0.001),
        4 => PI - 1e-8 + u * 2e-8, // full-circle branch boundary
        _ => u * 1e-8,             // sliver arcs
    })
}

/// Heterogeneous cameras hitting every kernel camera class: generic
/// sectors, φ ≈ π (the cos T ≈ 0 square-root class), near-disc φ ≈ 2π,
/// and narrow slivers.
fn hetero_camera_strategy() -> impl Strategy<Value = Camera> {
    (
        0.0..1.0f64,
        0.0..1.0f64,
        0.0..TAU,
        (0usize..4, 0.0..1.0f64).prop_map(|(sel, u)| match sel {
            0..=2 => 0.03 + u * 0.22,
            _ => 0.25 + u * 0.20,
        }),
        (0usize..7, 0.0..1.0f64).prop_map(|(sel, u)| match sel {
            0..=3 => 0.1 + u * (TAU - 0.1),
            4 => PI - 1e-7 + u * 2e-7,
            5 => TAU - 2e-9 * (1.0 - u),
            _ => 0.05 + u * 0.25,
        }),
        0usize..4,
    )
        .prop_map(|(x, y, facing, r, phi, g)| {
            Camera::new(
                Point::new(x, y),
                Angle::new(facing),
                SensorSpec::new(r, phi).unwrap(),
                GroupId(g),
            )
        })
}

fn hetero_network_strategy(max: usize) -> impl Strategy<Value = CameraNetwork> {
    prop::collection::vec(hetero_camera_strategy(), 0..max)
        .prop_map(|cams| CameraNetwork::new(Torus::unit(), cams))
}

/// Effective angles parked on the sector-count boundaries the kernel's
/// partition descriptors are most sensitive to: θ = π (one necessary
/// sector), θ = 2π/64 (exactly one mask word), `2π/θ` a hair above and
/// below an integer (extra-sector appears/disappears), plus θ below the
/// kernel's support gate (exercising the wholesale-exact path).
fn boundary_theta_strategy() -> impl Strategy<Value = EffectiveAngle> {
    (0usize..10, 0.05..=1.0f64, 2usize..40, -4i32..=4).prop_map(|(sel, f, k, ulps)| {
        let t = match sel {
            0..=3 => f * PI,
            4 => PI,
            5 => TAU / 64.0,
            6..=8 => ((TAU / k as f64) * (1.0 + f64::from(ulps) * 1e-15)).clamp(1e-3, PI),
            _ => 0.021 + (f - 0.05) * 0.003, // below the kernel support gate
        };
        EffectiveAngle::new(t).unwrap()
    })
}

// ---------- properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn largest_gap_matches_naive_reference(angles in angle_set_strategy()) {
        let mut angles = angles;
        angles.sort_by(|a, b| a.radians().partial_cmp(&b.radians()).unwrap());
        let fast = largest_circular_gap(&angles);
        let naive = naive_largest_gap(&angles);
        prop_assert_eq!(fast, naive, "n={}", angles.len());
        prop_assert!((0.0..=TAU).contains(&fast));
    }

    #[test]
    fn min_arc_depth_matches_naive_reference(
        centers in angle_set_strategy(),
        hw in half_width_strategy(),
    ) {
        let fast = min_arc_depth(&centers, hw);
        let naive = naive_min_arc_depth(&centers, hw);
        prop_assert_eq!(fast, naive, "n={} hw={}", centers.len(), hw);
        prop_assert!(fast <= centers.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole differential: the mask-screened tiled engine against
    /// the wholesale exact per-point sweep, whole-report equality (which
    /// is bit-identity — every field is an exact integer tally).
    #[test]
    fn mask_screened_tiles_match_exact_sweep(
        net in hetero_network_strategy(50),
        theta in boundary_theta_strategy(),
        start in 0.0..TAU,
        side in 2usize..24,
    ) {
        let grid = UnitGrid::new(Torus::unit(), side);
        let start = Angle::new(start);
        let exact = GridEvaluator::new_exact(theta, start)
            .evaluate_range(&net, &grid, 0..grid.len());
        let tiling = GridTiling::new(net.index(), &grid);
        let mut cursor = net.tile_cursor();
        let masked = GridEvaluator::new(theta, start)
            .evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiling.tile_count());
        prop_assert_eq!(masked, exact, "θ={} side={}", theta.radians(), side);
    }

    /// Per-point flags from the screened range sweep against the exact
    /// evaluator, over an arbitrary sub-range (exercises the tile span
    /// rejection and in-tile range filtering too).
    #[test]
    fn flags_sweep_matches_exact_flags(
        net in hetero_network_strategy(40),
        theta in boundary_theta_strategy(),
        side in 2usize..16,
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
    ) {
        let grid = UnitGrid::new(Torus::unit(), side);
        let (fa, fb) = if a <= b { (a, b) } else { (b, a) };
        let lo = (fa * grid.len() as f64) as usize;
        let hi = ((fb * grid.len() as f64) as usize).min(grid.len());
        let mut got = Vec::with_capacity(hi - lo);
        sweep_flags_range(&net, &grid, theta, Angle::ZERO, lo, hi, |idx, flags| {
            got.push((idx, flags));
        });
        prop_assert_eq!(got.len(), hi - lo);
        let mut exact_ev = GridEvaluator::new_exact(theta, Angle::ZERO);
        let mut seen = vec![false; hi - lo];
        for (idx, flags) in got {
            prop_assert!(idx >= lo && idx < hi, "idx {} outside {}..{}", idx, lo, hi);
            prop_assert!(!seen[idx - lo], "idx {} visited twice", idx);
            seen[idx - lo] = true;
            let exact = exact_ev.point_flags_with(&net, grid.point(idx));
            prop_assert_eq!(flags, exact, "idx {}", idx);
        }
    }

    /// The depth-screened k-count against per-point exact multiplicities.
    #[test]
    fn k_count_matches_per_point_multiplicity(
        net in hetero_network_strategy(40),
        theta in boundary_theta_strategy(),
        k in 0usize..5,
        side in 2usize..14,
    ) {
        let grid = UnitGrid::new(Torus::unit(), side);
        let counted = count_k_view_range(&net, &grid, theta, k, 0, grid.len());
        let brute = (0..grid.len())
            .filter(|&i| view_multiplicity(&net, grid.point(i), theta) >= k)
            .count();
        prop_assert_eq!(counted, brute, "k={} side={}", k, side);
    }
}
