//! Deterministic regression tests ported from the shrunk cases recorded in
//! `properties.proptest-regressions`.
//!
//! The vendored proptest runner does not replay persistence files, so the
//! three historical shrunk inputs live on here as explicit unit tests. Each
//! exercises a geometric edge the random strategies found the hard way:
//!
//! 1. a camera on the torus seam (`x = 0.0`) analysed from a target on the
//!    wrap axis (`py = 0.0`) with a near-π effective angle;
//! 2. a camera hugging the opposite seam (`x ≈ 0.94`) viewed from
//!    `px ≈ 0.11`, so the minimal-image displacement crosses the seam;
//! 3. Stevens' alternating series in the cancellation regime
//!    (`N·a < 1`, 113 tiny arcs), which must report exactly 0.

use fullview_core::{
    analyze_point, implied_k, is_full_view_covered, is_full_view_covered_arcset, is_k_covered,
    is_k_full_view_covered, meets_necessary_condition, meets_sufficient_condition, safe_fraction,
    stevens_coverage_probability, view_multiplicity, EffectiveAngle,
};
use fullview_geom::{Angle, Point, Torus};
use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
use std::f64::consts::PI;

/// Shrunk case 1 (`implication_chain_on_random_networks`): single camera on
/// the `x = 0` seam, target on the `y = 0` wrap axis, θ ≈ 0.905π.
#[test]
fn implication_chain_seam_camera_axis_target() {
    let camera = Camera::new(
        Point::new(0.0, 0.0879107389361699),
        Angle::new(0.0),
        SensorSpec::new(0.373484461061173, 4.793480656756764).unwrap(),
        GroupId(0),
    );
    let net = CameraNetwork::new(Torus::unit(), vec![camera]);
    let theta = EffectiveAngle::new(2.844260149132).unwrap();
    let p = Point::new(0.03478718582694567, 0.0);
    let start = Angle::new(0.0);

    let sufficient = meets_sufficient_condition(&net, p, theta, start);
    let full_view = is_full_view_covered(&net, p, theta);
    let necessary = meets_necessary_condition(&net, p, theta, start);
    let k_cov = is_k_covered(&net, p, implied_k(theta));

    // One camera cannot close the circle for θ < π: the single viewed
    // direction leaves a 2π gap > 2θ.
    assert!(!full_view, "one camera cannot be full-view for θ < π");
    assert!(!sufficient, "sufficient would contradict ¬full-view");
    // The implication chain itself (what the property asserts).
    if sufficient {
        assert!(full_view);
    }
    if full_view {
        assert!(necessary);
        assert!(k_cov);
    }
    // Both algorithms must agree on this seam geometry.
    assert_eq!(full_view, is_full_view_covered_arcset(&net, p, theta));
}

/// Shrunk case 2 (the `(net, f, px, py)` extension properties): two cameras,
/// one at `x ≈ 0.94` seen across the `x = 0` seam from `px ≈ 0.11`.
#[test]
fn cross_seam_pair_multiplicity_and_safe_fraction() {
    let cameras = vec![
        Camera::new(
            Point::new(0.9375476621322808, 0.04207501463339144),
            Angle::new(0.0),
            SensorSpec::new(0.2847263047746482, 3.2319174378386575).unwrap(),
            GroupId(0),
        ),
        Camera::new(
            Point::new(0.03166748758115314, 0.4615371751416415),
            Angle::new(0.0),
            SensorSpec::new(0.4070888088714897, 4.724414622817684).unwrap(),
            GroupId(0),
        ),
    ];
    let net = CameraNetwork::new(Torus::unit(), cameras);
    let theta = EffectiveAngle::new(0.6830705558268614 * PI).unwrap();
    let p = Point::new(0.11393882382733127, 0.19699529676816993);

    // k-full-view chain: k ≤ m covered, k = m+1 not, k = 1 ⇔ full-view.
    let m = view_multiplicity(&net, p, theta);
    for k in 0..=m.min(5) {
        assert!(
            is_k_full_view_covered(&net, p, theta, k),
            "k = {k} ≤ m = {m}"
        );
    }
    assert!(!is_k_full_view_covered(&net, p, theta, m + 1));
    assert_eq!(
        is_k_full_view_covered(&net, p, theta, 1),
        is_full_view_covered(&net, p, theta)
    );

    // Safe fraction is a valid fraction consistent with coverage.
    let frac = safe_fraction(&net, p, theta);
    assert!((0.0..=1.0 + 1e-9).contains(&frac), "frac = {frac}");
    if is_full_view_covered(&net, p, theta) {
        assert!(frac >= 1.0 - 1e-6);
    }

    // The seam-crossing camera's viewed direction must wrap: the camera
    // sits at x ≈ 0.94, the target at x ≈ 0.11, so the minimal image is
    // through the seam (displacement magnitude < 0.5).
    let a = analyze_point(&net, p);
    assert_eq!(a.covering_cameras, net.coverage_count(p));
    for v in &a.viewed_directions {
        let r = v.radians();
        assert!(
            (0.0..std::f64::consts::TAU).contains(&r),
            "unnormalized {r}"
        );
    }
}

/// Shrunk case 3 (`stevens_is_probability_and_monotone`): 113 arcs of
/// fractional length ≈ 0.0037 — total length 0.42 circumferences, so the
/// coverage probability is identically zero; the alternating series must
/// not leak cancellation noise outside [0, 1].
#[test]
fn stevens_cancellation_below_threshold() {
    let n_arcs = 113usize;
    let a = 0.003733026721237293f64;
    let p = stevens_coverage_probability(n_arcs, a);
    assert!((0.0..=1.0).contains(&p), "p = {p}");
    assert!(
        p < 1e-9,
        "N·a = {} < 1 must give 0, got {p}",
        n_arcs as f64 * a
    );
    // Monotone in the arc count at the same length.
    let p_more = stevens_coverage_probability(n_arcs + 1, a);
    assert!(p_more >= p - 1e-9);
    // And just above the threshold the formula must stay a probability:
    // 300 arcs of the same length (N·a ≈ 1.12) is deep cancellation.
    let above = stevens_coverage_probability(300, a);
    assert!((0.0..=1.0).contains(&above), "above = {above}");
}
