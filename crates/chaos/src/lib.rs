//! `fullview-chaos` — a deterministic fault-injection harness for the
//! fullview TCP protocol.
//!
//! A [`ChaosProxy`] sits between a client and an upstream daemon (or
//! coordinator) as an in-process TCP proxy. Every accepted connection
//! is assigned a [`Fault`] drawn from a seeded [`FaultPlan`]:
//!
//! * [`Fault::None`] — pass traffic through untouched.
//! * [`Fault::DelayMs`] — hold the connection for a fixed pause before
//!   any byte flows (a slow network / stalled peer).
//! * [`Fault::CutAfter`] — forward only the first `n` upstream bytes,
//!   then sever both directions (a crashed peer / dropped route,
//!   usually mid-frame: a truncated response).
//! * [`Fault::GarbageAfter`] — forward `n` upstream bytes, then inject
//!   bytes that are not valid protocol (not even UTF-8) and sever (a
//!   corrupted stream).
//!
//! Everything is a pure function of the proxy's seed and the
//! connection index, so a failing chaos run reproduces exactly from its
//! seed — in CI or locally. The fault schedule needs no clock and no
//! OS randomness; delays are fixed durations chosen by the plan.
//!
//! The harness never fabricates *valid-looking* traffic: an injected
//! fault can lose or mangle an answer, but it cannot invent a
//! well-formed `ok` frame with wrong bytes. Tests built on this proxy
//! therefore assert the protocol's end-to-end safety property: every
//! response a client does accept is byte-identical to the fault-free
//! answer, and every fault surfaces as a clean error, never a wrong
//! answer.

#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What happens to one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Traffic flows untouched.
    None,
    /// Both directions stall for this many milliseconds before the
    /// first byte flows.
    DelayMs(u64),
    /// Only the first `n` upstream→client bytes are forwarded; then the
    /// connection is severed in both directions.
    CutAfter(usize),
    /// After `n` upstream→client bytes, non-protocol garbage bytes are
    /// injected and the connection is severed.
    GarbageAfter(usize),
}

/// The bytes [`Fault::GarbageAfter`] injects: deliberately not valid
/// UTF-8, so no client can mistake them for a protocol frame.
pub const GARBAGE: &[u8] = &[0xff, 0xfe, 0x00, 0xc0, 0xde, 0xad, 0xbe, 0xef, 0x0a];

/// `splitmix64` — the tiny, well-mixed PRNG step the plan is built on.
/// Public so tests can derive auxiliary per-seed values the same way.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded fault schedule: connection `i` of a proxy with this plan
/// always draws the same fault, for any interleaving of connections.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// The plan for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The fault assigned to connection index `conn` (0-based, in
    /// accept order). Roughly: 40% clean, 15% delayed, 25% cut, 20%
    /// garbage — cut/garbage offsets land inside typical response
    /// frames so truncation happens mid-payload, not only at
    /// connection setup.
    #[must_use]
    pub fn fault_for(&self, conn: u64) -> Fault {
        let r = splitmix64(self.seed ^ conn.wrapping_mul(0x0123_4567_89ab_cdef));
        match r % 100 {
            0..=39 => Fault::None,
            40..=54 => Fault::DelayMs(1 + (r >> 8) % 20),
            55..=79 => Fault::CutAfter(((r >> 16) % 400) as usize),
            _ => Fault::GarbageAfter(((r >> 16) % 200) as usize),
        }
    }
}

/// A running chaos proxy. Stops (and severs every live connection) on
/// [`shutdown`](Self::shutdown) or drop.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("accepted", &self.accepted.load(Ordering::Relaxed))
            .finish()
    }
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port, forwarding every
    /// connection to `upstream` with faults drawn from `FaultPlan::new(seed)`.
    ///
    /// # Errors
    ///
    /// Propagates listener binding errors.
    pub fn start(upstream: impl ToSocketAddrs, seed: u64) -> io::Result<ChaosProxy> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no upstream address"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let plan = FaultPlan::new(seed);
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                accept_loop(&listener, upstream, plan, &shutdown, &accepted);
            })
        };
        Ok(ChaosProxy {
            addr,
            shutdown,
            accepted,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's client-facing address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (== the next connection's index).
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Stops accepting and severs live connections.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with one last connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.acceptor.take() {
            handle.join().expect("chaos acceptor panicked");
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    shutdown: &Arc<AtomicBool>,
    accepted: &Arc<AtomicUsize>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(downstream) = conn else { continue };
        let idx = accepted.fetch_add(1, Ordering::Relaxed) as u64;
        let fault = plan.fault_for(idx);
        let shutdown = Arc::clone(shutdown);
        pumps.push(std::thread::spawn(move || {
            proxy_connection(&downstream, upstream, fault, &shutdown);
        }));
    }
    for pump in pumps {
        pump.join().expect("chaos pump panicked");
    }
}

/// Severs both halves of a proxied pair; idempotent (errors ignored —
/// the peer may already be gone, which is the point of the exercise).
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn proxy_connection(
    downstream: &TcpStream,
    upstream_addr: SocketAddr,
    fault: Fault,
    shutdown: &Arc<AtomicBool>,
) {
    let Ok(upstream) = TcpStream::connect(upstream_addr) else {
        let _ = downstream.shutdown(Shutdown::Both);
        return;
    };
    let _ = downstream.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    if let Fault::DelayMs(ms) = fault {
        std::thread::sleep(Duration::from_millis(ms));
    }
    // client→upstream: always verbatim. Requests are never corrupted by
    // this harness — the failure modes under test are a *peer* crashing
    // or a *stream* dying, and the safety property ("no wrong answers")
    // lives on the response path.
    let c2s = {
        let (Ok(down_read), Ok(up_write)) = (downstream.try_clone(), upstream.try_clone()) else {
            sever(downstream, &upstream);
            return;
        };
        let shutdown = Arc::clone(shutdown);
        std::thread::spawn(move || {
            pump(&down_read, &up_write, usize::MAX, false, &shutdown);
            sever(&down_read, &up_write);
        })
    };
    // upstream→client: the faulted direction.
    let (budget, garbage) = match fault {
        Fault::CutAfter(n) => (n, false),
        Fault::GarbageAfter(n) => (n, true),
        Fault::None | Fault::DelayMs(_) => (usize::MAX, false),
    };
    pump(&upstream, downstream, budget, garbage, shutdown);
    sever(downstream, &upstream);
    c2s.join().expect("client→server pump panicked");
}

/// Copies bytes from `src` to `dst` until EOF, error, shutdown, or a
/// spent `budget`; a spent budget optionally injects [`GARBAGE`] before
/// returning. The short read timeout keeps the pump responsive to
/// proxy shutdown without busy-waiting.
fn pump(src: &TcpStream, dst: &TcpStream, mut budget: usize, garbage: bool, stop: &AtomicBool) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let mut src_reader = src;
    let mut dst_writer = dst;
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match src_reader.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let fwd = n.min(budget);
        if dst_writer.write_all(&buf[..fwd]).is_err() {
            return;
        }
        budget -= fwd;
        if budget == 0 {
            if garbage {
                let _ = dst_writer.write_all(GARBAGE);
                let _ = dst_writer.flush();
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(42);
        let b = FaultPlan::new(42);
        let c = FaultPlan::new(43);
        let seq_a: Vec<Fault> = (0..64).map(|i| a.fault_for(i)).collect();
        let seq_b: Vec<Fault> = (0..64).map(|i| b.fault_for(i)).collect();
        let seq_c: Vec<Fault> = (0..64).map(|i| c.fault_for(i)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same schedule");
        assert_ne!(seq_a, seq_c, "different seed, different schedule");
    }

    #[test]
    fn plans_cover_every_fault_kind() {
        let plan = FaultPlan::new(7);
        let mut clean = 0;
        let mut delay = 0;
        let mut cut = 0;
        let mut garbage = 0;
        for i in 0..200 {
            match plan.fault_for(i) {
                Fault::None => clean += 1,
                Fault::DelayMs(ms) => {
                    assert!((1..=20).contains(&ms));
                    delay += 1;
                }
                Fault::CutAfter(n) => {
                    assert!(n < 400);
                    cut += 1;
                }
                Fault::GarbageAfter(n) => {
                    assert!(n < 200);
                    garbage += 1;
                }
            }
        }
        assert!(
            clean > 0 && delay > 0 && cut > 0 && garbage > 0,
            "200 draws must cover all kinds: {clean}/{delay}/{cut}/{garbage}"
        );
    }

    #[test]
    // The invalidity is exactly the property under test: garbage that
    // decoded as UTF-8 could be mistaken for a protocol frame.
    #[allow(invalid_from_utf8)]
    fn garbage_is_not_utf8() {
        assert!(std::str::from_utf8(GARBAGE).is_err());
    }

    #[test]
    fn clean_connections_pass_through_a_live_echo() {
        // A minimal upstream echoing one line back per line received.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { return };
                std::thread::spawn(move || {
                    let mut reader = io::BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    use io::BufRead as _;
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        if writer.write_all(line.as_bytes()).is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        // Pick the first seed whose connection 0 draws Fault::None so
        // the test exercises the pass-through path specifically.
        let mut seed = 0u64;
        while FaultPlan::new(seed).fault_for(0) != Fault::None {
            seed += 1;
        }
        let proxy = ChaosProxy::start(upstream_addr, seed).unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.write_all(b"hello through the proxy\n").unwrap();
        let mut reader = io::BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        use io::BufRead as _;
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello through the proxy\n");
        assert_eq!(proxy.accepted(), 1);
    }
}
