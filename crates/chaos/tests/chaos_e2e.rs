//! Chaos e2e: real daemons (and a real coordinator) behind the seeded
//! fault-injecting proxy, asserting the protocol's end-to-end safety
//! property — **zero wrong answers**. A faulted connection may fail,
//! but every response a client accepts is byte-identical to the
//! fault-free answer, and every acknowledged mutation survives.
//!
//! Every schedule here is a pure function of the pinned seeds, so a
//! failure reproduces exactly — rerun the test, get the same faults.

use fullview_chaos::{ChaosProxy, Fault, FaultPlan};
use fullview_cluster::{ClusterConfig, Coordinator};
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Client, Server, ServiceConfig};
use std::time::Duration;

const N: usize = 40;
const SEED: u64 = 7;
/// The chaos seed for single-daemon runs; pinned so CI failures replay.
const CHAOS_SEED: u64 = 0xC0FFEE;

fn test_profile() -> NetworkProfile {
    NetworkProfile::homogeneous(SensorSpec::new(0.15, 120f64.to_radians()).expect("valid spec"))
}

fn daemon() -> Server {
    let mut config = ServiceConfig::new(test_profile());
    config.n = N;
    config.seed = SEED;
    config.workers = 2;
    Server::start(config).expect("daemon start")
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    client
}

const QUERIES: &[&str] = &[
    "check",
    "map side=16",
    "holes grid=12",
    "kfull k=1 grid=10",
    "prob density=100",
    "fingerprint",
];

#[test]
fn chaosed_daemon_yields_byte_identical_answers_or_clean_errors() {
    let server = daemon();
    // Fault-free reference answers over a direct connection.
    let mut direct = connect(server.local_addr());
    let expected: Vec<String> = QUERIES
        .iter()
        .map(|q| direct.request_ok(q).expect(q))
        .collect();

    let proxy = ChaosProxy::start(server.local_addr(), CHAOS_SEED).expect("proxy");
    let plan = FaultPlan::new(CHAOS_SEED);
    let rounds = 48u64;
    let clean_scheduled = (0..rounds)
        .filter(|&i| matches!(plan.fault_for(i), Fault::None | Fault::DelayMs(_)))
        .count();
    assert!(
        clean_scheduled >= 10 && clean_scheduled < rounds as usize,
        "seed must schedule a mix of clean and faulted connections, got {clean_scheduled}/{rounds}"
    );

    let mut ok = 0usize;
    let mut failed = 0usize;
    for i in 0..rounds {
        let query = QUERIES[(i as usize) % QUERIES.len()];
        let want = &expected[(i as usize) % QUERIES.len()];
        // One connection per round so every round draws its own fault.
        let outcome = Client::connect(proxy.local_addr()).and_then(|mut client| {
            client.set_timeout(Some(Duration::from_secs(5)))?;
            client.request(query)
        });
        match outcome {
            Ok(fullview_service::Response::Ok(payload)) => {
                assert_eq!(
                    &payload, want,
                    "connection {i} ({query}): accepted answers must be byte-identical"
                );
                ok += 1;
            }
            // An err frame or a dead/corrupted stream is a *clean*
            // failure: the client knows it has no answer.
            Ok(fullview_service::Response::Err(_)) | Err(_) => failed += 1,
        }
    }
    assert!(ok > 0, "some clean connections must succeed");
    assert!(failed > 0, "the schedule above guarantees some faults bite");
    // The daemon itself never wavers: a direct query still matches.
    assert_eq!(&direct.request_ok("map side=16").unwrap(), &expected[1]);
}

#[test]
fn cluster_behind_chaosed_shards_returns_no_wrong_answers() {
    let shard_a = daemon();
    let shard_b = daemon();
    let proxy_a = ChaosProxy::start(shard_a.local_addr(), CHAOS_SEED + 1).expect("proxy a");
    let proxy_b = ChaosProxy::start(shard_b.local_addr(), CHAOS_SEED + 2).expect("proxy b");

    let mut direct = connect(shard_a.local_addr());
    let expected: Vec<String> = QUERIES
        .iter()
        .map(|q| direct.request_ok(q).expect(q))
        .collect();

    let dir = std::env::temp_dir().join(format!("fvc-chaos-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let make_config = || {
        let mut cfg = ClusterConfig::new(vec![
            proxy_a.local_addr().to_string(),
            proxy_b.local_addr().to_string(),
        ]);
        cfg.backoff_ms = 1;
        cfg.backoff_cap_ms = 20;
        cfg.retries = 4;
        cfg.snapshot_dir = Some(dir.clone());
        cfg
    };
    // Startup itself rolls the fault dice (fingerprint + snapshot
    // handshakes through the proxies); each attempt consumes more of
    // the deterministic schedule, so a clean pair arrives quickly.
    let mut coordinator = None;
    for _ in 0..8 {
        match Coordinator::start(make_config()) {
            Ok(c) => {
                coordinator = Some(c);
                break;
            }
            Err(_) => continue,
        }
    }
    let coordinator = coordinator.expect("coordinator start through chaos");

    let mut client = connect(coordinator.local_addr());
    let mut ok = 0usize;
    for i in 0..24usize {
        let query = QUERIES[i % QUERIES.len()];
        let want = &expected[i % QUERIES.len()];
        match client.request_ok(query) {
            Ok(payload) => {
                assert_eq!(
                    &payload, want,
                    "{query}: the coordinator must never gather a wrong answer \
                     from truncated or corrupted shard traffic"
                );
                ok += 1;
            }
            // All replicas down / budget spent: a clean, named failure.
            Err(message) => assert!(!message.is_empty(), "{query}"),
        }
    }
    assert!(
        ok > 0,
        "retry rounds and replica failover must land some answers"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acknowledged_mutations_through_chaos_are_never_lost() {
    // The WAL daemon sits behind the proxy; every `move` is retried on
    // a fresh connection until acknowledged (moves are idempotent, so a
    // lost ack followed by a retry converges to the same fleet).
    let dir = std::env::temp_dir().join(format!("fvc-chaos-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut config = ServiceConfig::new(test_profile());
    config.n = N;
    config.seed = SEED;
    config.wal = Some(dir.join("fleet.snap"));
    let server = Server::start(config).expect("daemon start");
    let proxy = ChaosProxy::start(server.local_addr(), CHAOS_SEED + 3).expect("proxy");

    let moves: Vec<String> = (0..10)
        .map(|i| format!("move id={} x=0.0{} y=0.9{}", i, i, i))
        .collect();
    let mut attempts = 0usize;
    for mutation in &moves {
        loop {
            attempts += 1;
            assert!(attempts < 500, "chaos never lets a mutation through?");
            let acked = Client::connect(proxy.local_addr())
                .and_then(|mut client| {
                    client.set_timeout(Some(Duration::from_secs(5)))?;
                    client.request(mutation)
                })
                .map(|resp| matches!(resp, fullview_service::Response::Ok(_)))
                .unwrap_or(false);
            if acked {
                break;
            }
        }
    }

    // Reference: the same moves applied directly to an identical fleet.
    let reference = daemon();
    let mut ref_client = connect(reference.local_addr());
    for mutation in &moves {
        ref_client.request_ok(mutation).expect(mutation);
    }
    let want_fp = ref_client.request_ok("fingerprint").unwrap();

    // Every acknowledged mutation must be present — checked over a
    // direct connection so chaos cannot mask a loss.
    let mut direct = connect(server.local_addr());
    assert_eq!(
        direct.request_ok("fingerprint").unwrap(),
        want_fp,
        "acked-through-chaos fleet must be bit-identical to the reference"
    );
    assert!(
        attempts > moves.len(),
        "the schedule must have forced at least one retry (attempts={attempts})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
