use fullview_core::{sweep_flags_range, EffectiveAngle};
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_hier::sweep_flags_range_hier;
use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
use std::f64::consts::{PI, TAU};
use std::time::Instant;

fn dense_network(n: usize, radius: f64, aov: f64) -> CameraNetwork {
    let torus = Torus::unit();
    let spec = SensorSpec::new(radius, aov).unwrap();
    let cams: Vec<Camera> = (0..n)
        .map(|i| {
            let t = i as f64;
            let pos = Point::new(
                (t * 0.754_877_666_246_693).fract(),
                (t * 0.569_840_290_998_053 + 0.137).fract(),
            );
            Camera::new(pos, Angle::new(t * 2.399_963), spec, GroupId(i % 3))
        })
        .collect();
    CameraNetwork::new(torus, cams)
}

fn main() {
    for (n, r, aov, side) in [
        (420usize, 0.12f64, TAU, 128usize),
        (420, 0.12, TAU, 256),
        (420, 0.12, TAU, 512),
        (420, 0.12, TAU, 1024),
        (420, 0.12, TAU, 2048),
        (420, 0.12, PI, 1024),
    ] {
        let net = dense_network(n, r, aov);
        let theta = EffectiveAngle::new(PI / 3.0).unwrap();
        let grid = UnitGrid::new(Torus::unit(), side);
        let t0 = Instant::now();
        let mut acc = 0usize;
        sweep_flags_range(&net, &grid, theta, Angle::ZERO, 0, grid.len(), |_, f| {
            acc += usize::from(f.full_view);
        });
        let mask_t = t0.elapsed();
        let t1 = Instant::now();
        let mut acc2 = 0usize;
        let stats =
            sweep_flags_range_hier(&net, &grid, theta, Angle::ZERO, 0, grid.len(), |_, f| {
                acc2 += usize::from(f.full_view);
            });
        let hier_t = t1.elapsed();
        assert_eq!(acc, acc2);
        println!(
            "n={n} r={r} aov={aov:.2} side={side}: mask {:?}  hier {:?}  speedup {:.2}x  [{stats}]",
            mask_t,
            hier_t,
            mask_t.as_secs_f64() / hier_t.as_secs_f64()
        );
    }
}
