//! The hier ⇄ exact differential: every hier-backed sweep must be
//! **bit-identical** to the exact engine, which stays the oracle.
//!
//! Three families:
//!
//! * property differentials — random heterogeneous networks, effective
//!   angles parked on sector-count boundaries, arbitrary ranged
//!   sub-sweeps and tile geometries, pinning flags, k-counts, masks,
//!   and glyph rows against `fullview-core`;
//! * accounting invariants — every in-range point is either proven by a
//!   certificate or visited exactly once, never both, never neither;
//! * a deterministic dense deployment large enough that the point-space
//!   recursion actually proves interior rectangles (`points_proved > 0`),
//!   so the fast path itself — not just its fallbacks — is differential
//!   tested.

use fullview_core::{
    count_k_view_range, coverage_glyphs_range, evaluate_grid, find_holes, full_view_mask_range,
    sweep_flags_range, EffectiveAngle, GridEvaluator,
};
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_hier::{
    count_k_view_range_hier, coverage_glyphs_range_hier, evaluate_grid_hier, find_holes_hier,
    full_view_mask_range_hier, sweep_flags_range_hier,
};
use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

// ---------- strategies (mirroring core's mask differential) ----------

/// Heterogeneous cameras hitting the prover's case splits: generic
/// sectors, omnidirectional φ ≈ 2π (the `aov_ok` fast branch), narrow
/// slivers, and radii from sliver to index-degenerate.
fn hetero_camera_strategy() -> impl Strategy<Value = Camera> {
    (
        0.0..1.0f64,
        0.0..1.0f64,
        0.0..TAU,
        (0usize..4, 0.0..1.0f64).prop_map(|(sel, u)| match sel {
            0..=2 => 0.03 + u * 0.22,
            _ => 0.25 + u * 0.20,
        }),
        (0usize..7, 0.0..1.0f64).prop_map(|(sel, u)| match sel {
            0..=3 => 0.1 + u * (TAU - 0.1),
            4 => PI - 1e-7 + u * 2e-7,
            5 => TAU - 2e-9 * (1.0 - u),
            _ => 0.05 + u * 0.25,
        }),
        0usize..4,
    )
        .prop_map(|(x, y, facing, r, phi, g)| {
            Camera::new(
                Point::new(x, y),
                Angle::new(facing),
                SensorSpec::new(r, phi).unwrap(),
                GroupId(g),
            )
        })
}

fn hetero_network_strategy(max: usize) -> impl Strategy<Value = CameraNetwork> {
    prop::collection::vec(hetero_camera_strategy(), 0..max)
        .prop_map(|cams| CameraNetwork::new(Torus::unit(), cams))
}

/// Effective angles parked where the sector partitions are touchiest:
/// θ = π (one necessary sector), exact divisors of 2π a few ulps either
/// side of an integer sector count, and generic values.
fn boundary_theta_strategy() -> impl Strategy<Value = EffectiveAngle> {
    (0usize..10, 0.05..=1.0f64, 2usize..40, -4i32..=4).prop_map(|(sel, f, k, ulps)| {
        let t = match sel {
            0..=3 => f * PI,
            4 => PI,
            5 => TAU / 64.0,
            6..=8 => ((TAU / k as f64) * (1.0 + f64::from(ulps) * 1e-15)).clamp(1e-3, PI),
            _ => 0.021 + (f - 0.05) * 0.003,
        };
        EffectiveAngle::new(t).unwrap()
    })
}

// ---------- deterministic dense deployments ----------

/// Low-discrepancy golden-ratio scatter: dense enough that interior
/// rectangles are provably covered, deterministic so failures replay.
fn dense_network(n: usize, radius: f64, aov: f64) -> CameraNetwork {
    let torus = Torus::unit();
    let spec = SensorSpec::new(radius, aov).unwrap();
    let cams: Vec<Camera> = (0..n)
        .map(|i| {
            let t = i as f64;
            let pos = Point::new(
                (t * 0.754_877_666_246_693).fract(),
                (t * 0.569_840_290_998_053 + 0.137).fract(),
            );
            Camera::new(pos, Angle::new(t * 2.399_963), spec, GroupId(i % 3))
        })
        .collect();
    CameraNetwork::new(torus, cams)
}

/// Collects one hier flags sweep into an index-keyed vector, asserting
/// each in-range index is emitted exactly once.
fn hier_flags(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    lo: usize,
    hi: usize,
) -> (Vec<fullview_core::PointFlags>, fullview_hier::ProverStats) {
    let mut got = vec![None; hi - lo];
    let stats = sweep_flags_range_hier(net, grid, theta, Angle::ZERO, lo, hi, |idx, flags| {
        assert!(idx >= lo && idx < hi, "idx {idx} outside {lo}..{hi}");
        assert!(got[idx - lo].is_none(), "idx {idx} emitted twice");
        got[idx - lo] = Some(flags);
    });
    let flags = got
        .into_iter()
        .map(|f| f.expect("every in-range index emitted"))
        .collect();
    (flags, stats)
}

// ---------- properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole differential: hier-backed flags, bit-identical to
    /// the exact range sweep over an arbitrary sub-range, with every
    /// in-range point either proven or visited (exactly once).
    #[test]
    fn hier_flags_sweep_matches_exact(
        net in hetero_network_strategy(40),
        theta in boundary_theta_strategy(),
        side in 2usize..24,
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
    ) {
        let grid = UnitGrid::new(Torus::unit(), side);
        let (fa, fb) = if a <= b { (a, b) } else { (b, a) };
        let lo = (fa * grid.len() as f64) as usize;
        let hi = ((fb * grid.len() as f64) as usize).min(grid.len());
        let (got, stats) = hier_flags(&net, &grid, theta, lo, hi);
        prop_assert_eq!(
            stats.points_proved + stats.points_visited,
            hi - lo,
            "accounting must partition the range"
        );
        let mut exact_ev = GridEvaluator::new_exact(theta, Angle::ZERO);
        for (off, flags) in got.iter().enumerate() {
            let exact = exact_ev.point_flags_with(&net, grid.point(lo + off));
            prop_assert_eq!(*flags, exact, "idx {}", lo + off);
        }
    }

    /// Hier k-count against the core range count, all k including the
    /// trivial 0 and values above any multiplicity present.
    #[test]
    fn hier_kcount_matches_core(
        net in hetero_network_strategy(40),
        theta in boundary_theta_strategy(),
        k in 0usize..5,
        side in 2usize..16,
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
    ) {
        let grid = UnitGrid::new(Torus::unit(), side);
        let (fa, fb) = if a <= b { (a, b) } else { (b, a) };
        let lo = (fa * grid.len() as f64) as usize;
        let hi = ((fb * grid.len() as f64) as usize).min(grid.len());
        let (got, stats) = count_k_view_range_hier(&net, &grid, theta, k, lo, hi);
        let want = count_k_view_range(&net, &grid, theta, k, lo, hi);
        prop_assert_eq!(got, want, "k={} side={} range={}..{}", k, side, lo, hi);
        if k > 0 && lo < hi {
            prop_assert_eq!(stats.points_proved + stats.points_visited, hi - lo);
        }
    }

    /// The wire-visible wrappers: glyph rows and full-view masks must be
    /// byte-identical to the core renderers the daemon verbs serve.
    #[test]
    fn hier_wrappers_match_core_bytes(
        net in hetero_network_strategy(32),
        theta in boundary_theta_strategy(),
        side in 2usize..16,
        a in 0.0..1.0f64,
        b in 0.0..1.0f64,
    ) {
        let len = side * side;
        let (fa, fb) = if a <= b { (a, b) } else { (b, a) };
        let lo = (fa * len as f64) as usize;
        let hi = ((fb * len as f64) as usize).min(len);
        let (glyphs, _) = coverage_glyphs_range_hier(&net, theta, side, lo, hi);
        prop_assert_eq!(glyphs, coverage_glyphs_range(&net, theta, side, lo, hi));
        let (mask, _) = full_view_mask_range_hier(&net, theta, side, lo, hi);
        prop_assert_eq!(mask, full_view_mask_range(&net, theta, side, lo, hi));
    }
}

// ---------- deterministic dense cases ----------

/// Side large enough that index tiles exceed the whole-tile kernel
/// threshold, forcing point-space recursion — and dense enough that
/// `FullyCovered` certificates actually fire.
#[test]
fn dense_omni_large_grid_proves_interior_rectangles() {
    let net = dense_network(420, 0.12, TAU);
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    let side = 160;
    let grid = UnitGrid::new(Torus::unit(), side);
    let (got, stats) = hier_flags(&net, &grid, theta, 0, grid.len());
    assert!(
        stats.points_proved > 0,
        "dense omni deployment must prove some rectangles, stats: {stats}"
    );
    assert_eq!(stats.points_proved + stats.points_visited, grid.len());
    let mut want = vec![None; grid.len()];
    sweep_flags_range(
        &net,
        &grid,
        theta,
        Angle::ZERO,
        0,
        grid.len(),
        |idx, flags| {
            want[idx] = Some(flags);
        },
    );
    for (idx, flags) in got.iter().enumerate() {
        assert_eq!(*flags, want[idx].unwrap(), "idx {idx}");
    }
}

/// Directional cameras: the `aov_ok` containment branch, plus empty
/// regions (smaller n) exercising `Empty` certificates.
#[test]
fn sparse_directional_grid_matches_exact_and_proves_empties() {
    let net = dense_network(70, 0.09, PI);
    let theta = EffectiveAngle::new(PI / 2.0).unwrap();
    let side = 144;
    let grid = UnitGrid::new(Torus::unit(), side);
    let (got, stats) = hier_flags(&net, &grid, theta, 0, grid.len());
    assert_eq!(stats.points_proved + stats.points_visited, grid.len());
    let mut want = vec![None; grid.len()];
    sweep_flags_range(
        &net,
        &grid,
        theta,
        Angle::ZERO,
        0,
        grid.len(),
        |idx, flags| {
            want[idx] = Some(flags);
        },
    );
    for (idx, flags) in got.iter().enumerate() {
        assert_eq!(*flags, want[idx].unwrap(), "idx {idx}");
    }
}

/// The report- and hole-level wrappers at a side where certificates
/// fire: identical tallies, identical rendered hole report.
#[test]
fn dense_reports_and_holes_match_core() {
    let net = dense_network(420, 0.12, TAU);
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    let side = 160;
    let grid = UnitGrid::new(Torus::unit(), side);
    let (report, _) = evaluate_grid_hier(&net, theta, &grid, Angle::ZERO);
    assert_eq!(report, evaluate_grid(&net, theta, &grid, Angle::ZERO));
    let (holes, _) = find_holes_hier(&net, theta, side);
    assert_eq!(holes.to_string(), find_holes(&net, theta, side).to_string());
}

/// Hier k-count at a certificate-firing side, for the multiplicities
/// the cluster `kfull` verb serves.
#[test]
fn dense_kcount_matches_core_at_scale() {
    let net = dense_network(420, 0.12, TAU);
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    let side = 128;
    let grid = UnitGrid::new(Torus::unit(), side);
    for k in [1usize, 2, 3] {
        let (got, _) = count_k_view_range_hier(&net, &grid, theta, k, 0, grid.len());
        assert_eq!(
            got,
            count_k_view_range(&net, &grid, theta, k, 0, grid.len()),
            "k={k}"
        );
    }
    // Ranged sub-sweeps partition-sum to the full count.
    let third = grid.len() / 3;
    let (c1, _) = count_k_view_range_hier(&net, &grid, theta, 1, 0, third);
    let (c2, _) = count_k_view_range_hier(&net, &grid, theta, 1, third, 2 * third);
    let (c3, _) = count_k_view_range_hier(&net, &grid, theta, 1, 2 * third, grid.len());
    let (all, _) = count_k_view_range_hier(&net, &grid, theta, 1, 0, grid.len());
    assert_eq!(c1 + c2 + c3, all);
}

/// Stats merging is plain summation; the Display line is stable.
#[test]
fn stats_merge_and_display() {
    let mut a = fullview_hier::ProverStats {
        nodes: 3,
        proved_full: 1,
        proved_empty: 1,
        points_proved: 90,
        points_visited: 10,
        tiles_exact: 1,
    };
    let b = a;
    a.merge(&b);
    assert_eq!(a.nodes, 6);
    assert_eq!(a.points_proved, 180);
    assert!((a.proved_fraction() - 0.9).abs() < 1e-12);
    assert_eq!(
        b.to_string(),
        "nodes 3 (full 1, empty 1), points proved 90 / visited 10, exact tiles 1"
    );
}
