//! The quadtree certificate prover over [`GridTiling`].
//!
//! # Certificates
//!
//! The prover recurses over axis-aligned rectangles of grid points —
//! first over the tile lattice of the spatial index (midpoint quadtree
//! splits down to single tiles), then over point-space sub-rectangles
//! *inside* a tile — and attempts, per node, one of two certificates
//! from the conservative bounds of [`crate::bounds`]:
//!
//! * **`Empty`** — every candidate camera's `dmin` over the rectangle
//!   exceeds its sensing radius (plus margin): no rectangle point has
//!   any covering camera, so all five predicate flags are `false` and
//!   the k-view multiplicity is `0`.
//! * **`FullyCovered`** — at least `⌈π/θ⌉` *full-cover witnesses*
//!   (cameras whose `dmax` is inside their radius with margin and whose
//!   viewed-direction cone fits inside their field of view with margin)
//!   exist, and every sector of **both** the necessary (`2θ`) and
//!   sufficient (`θ`) partitions contains some witness cone entirely.
//!   By the paper's §IV sufficiency theorem the largest angular gap at
//!   every rectangle point is then at most `2θ`, so all five flags are
//!   `true`. Disjoint witness families (first-fit, one family member
//!   per sufficient sector) additionally lower-bound the k-view
//!   multiplicity: `groups` families imply multiplicity ≥ `groups`
//!   everywhere in the rectangle.
//! * **`Boundary`** — neither proof succeeds: recurse, and at the
//!   floor hand the surviving points to the exact engine.
//!
//! # Conservativeness and bit-identity
//!
//! Every certificate implies the exact per-point predicate *strictly*
//! (margins of `1e-9`/`1e-7` dwarf both f64 noise and the engine's
//! `ANGLE_EPS` tolerances), and extra covering cameras can only keep
//! the proven flags `true` (all five predicates are monotone in the
//! covering set). Anything unproven falls through to
//! [`GridEvaluator::point_flags_with`] / the whole-tile funnel
//! [`GridEvaluator::for_each_point_flags_in_tile`] — the same code the
//! cold sweep runs — so the combined answer is bit-identical to
//! [`fullview_core::sweep_flags_range`] by construction.

use crate::bounds::{bound_camera, dist_band, Rect, ANG_BAND};
use fullview_core::{
    min_arc_depth, sweep_flags_range, use_tiled, EffectiveAngle, GridEvaluator, GridTiling,
    PointAnalyzer, PointFlags, SectorPartition,
};
use fullview_geom::{Angle, Arc, Point, Torus, UnitGrid, ANGLE_EPS};
use fullview_model::{CameraNetwork, TileCursor};
use std::f64::consts::TAU;
use std::fmt;

/// Tiles with at most this many grid points skip point-space recursion
/// and go straight through the engine's whole-tile mask/exact funnel —
/// at small tile sizes the kernel screen beats certificate attempts.
const KERNEL_TILE_MAX: usize = 256;

/// Point-space recursion floor: rectangles at most this many points are
/// evaluated exactly, point by point, against the pinned tile cursor.
const FLOOR_POINTS: usize = 16;

/// `ScreenStats`-style counters of what the prover decided without
/// visiting points, accumulated over one hierarchical sweep (or merged
/// across many via [`merge`](Self::merge)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Certificate attempts (tree nodes classified).
    pub nodes: usize,
    /// Nodes proven `FullyCovered`.
    pub proved_full: usize,
    /// Nodes proven `Empty`.
    pub proved_empty: usize,
    /// In-range points decided by a certificate, never visited.
    pub points_proved: usize,
    /// In-range points that reached the exact/mask engine.
    pub points_visited: usize,
    /// Whole tiles routed through the engine's tile funnel.
    pub tiles_exact: usize,
}

impl ProverStats {
    /// Accumulates `other` into `self` (plain field-wise sums, so merge
    /// order never matters).
    pub fn merge(&mut self, other: &ProverStats) {
        self.nodes += other.nodes;
        self.proved_full += other.proved_full;
        self.proved_empty += other.proved_empty;
        self.points_proved += other.points_proved;
        self.points_visited += other.points_visited;
        self.tiles_exact += other.tiles_exact;
    }

    /// Fraction of decided points proven without a visit (`1.0` when no
    /// points were processed at all).
    #[must_use]
    pub fn proved_fraction(&self) -> f64 {
        let total = self.points_proved + self.points_visited;
        if total == 0 {
            return 1.0;
        }
        self.points_proved as f64 / total as f64
    }
}

impl fmt::Display for ProverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes {} (full {}, empty {}), points proved {} / visited {}, exact tiles {}",
            self.nodes,
            self.proved_full,
            self.proved_empty,
            self.points_proved,
            self.points_visited,
            self.tiles_exact
        )
    }
}

/// A node-level proof. `Boundary` is represented as `None` from
/// [`Prover::classify`].
#[derive(Debug, Clone, Copy)]
enum Cert {
    /// No candidate camera reaches any point of the rectangle.
    Empty,
    /// The rectangle is uniformly covered in every sense the flags
    /// measure; `groups` disjoint witness families bound the k-view
    /// multiplicity from below, `flags_ok` says all five predicate
    /// flags are proven `true`.
    Full { groups: usize, flags_ok: bool },
}

const ALL_TRUE: PointFlags = PointFlags {
    covered: true,
    k_covered: true,
    necessary: true,
    full_view: true,
    sufficient: true,
};

const ALL_FALSE: PointFlags = PointFlags {
    covered: false,
    k_covered: false,
    necessary: false,
    full_view: false,
    sufficient: false,
};

/// What a consumer does with proven rectangles and residual points. The
/// prover owns recursion, certificates, and stats; sinks own the exact
/// evaluation semantics (flags vs multiplicity counting).
trait HierSink {
    /// Whether a `Full` certificate decides this sink's predicate.
    fn accepts_full(&self, groups: usize, flags_ok: bool) -> bool;

    /// Consume a certified rectangle (grid columns `c0..c1`, rows
    /// `r0..r1`; clip each row to `lo..hi`).
    #[allow(clippy::too_many_arguments)]
    fn proved_rect(
        &mut self,
        cert: &Cert,
        gs: usize,
        lo: usize,
        hi: usize,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    );

    /// Exactly evaluate the in-range points of the rectangle; `cursor`
    /// is pinned to the enclosing tile's cell.
    #[allow(clippy::too_many_arguments)]
    fn exact_rect(
        &mut self,
        cursor: &TileCursor<'_>,
        grid: &UnitGrid,
        gs: usize,
        lo: usize,
        hi: usize,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    );

    /// Exactly evaluate a whole tile through the shared engine funnel.
    fn exact_tile(
        &mut self,
        cursor: &mut TileCursor<'_>,
        tiling: &GridTiling,
        grid: &UnitGrid,
        t: usize,
        lo: usize,
        hi: usize,
    );
}

/// Per-camera geometry snapshot (avoids re-reading specs in the hot
/// candidate loop).
struct CamInfo {
    pos: Point,
    radius: f64,
    orientation: Angle,
    aov: f64,
}

struct Prover<'a> {
    grid: &'a UnitGrid,
    torus: Torus,
    tiling: GridTiling,
    cursor: TileCursor<'a>,
    cams: Vec<CamInfo>,
    necessary: Vec<Arc>,
    sufficient: Vec<Arc>,
    k_nec: usize,
    /// `starts[c]..starts[c + 1]`: grid columns (rows) of index cell `c`.
    starts: Vec<usize>,
    cells: usize,
    gs: usize,
    spacing: f64,
    band: f64,
    lo: usize,
    hi: usize,
    stats: ProverStats,
}

impl<'a> Prover<'a> {
    fn new(
        net: &'a CameraNetwork,
        grid: &'a UnitGrid,
        theta: EffectiveAngle,
        start_line: Angle,
        lo: usize,
        hi: usize,
    ) -> Self {
        let tiling = GridTiling::new(net.index(), grid);
        let cells = tiling.cells_per_axis();
        let mut starts: Vec<usize> = (0..cells)
            .map(|c| tiling.cell_axis_range(c).start)
            .collect();
        starts.push(grid.side_count());
        let cams = net
            .cameras()
            .iter()
            .map(|c| CamInfo {
                pos: c.position(),
                radius: c.spec().radius(),
                orientation: c.orientation(),
                aov: c.spec().angle_of_view(),
            })
            .collect();
        Prover {
            grid,
            torus: *net.torus(),
            cursor: net.tile_cursor(),
            cams,
            necessary: SectorPartition::necessary(theta, start_line)
                .sectors()
                .to_vec(),
            sufficient: SectorPartition::sufficient(theta, start_line)
                .sectors()
                .to_vec(),
            k_nec: theta.necessary_sector_count(),
            starts,
            cells,
            gs: grid.side_count(),
            spacing: grid.spacing(),
            band: dist_band(net.torus().side()),
            lo,
            hi,
            stats: ProverStats::default(),
            tiling,
        }
    }

    /// The closed rectangle of point centres of grid columns `c0..c1`,
    /// rows `r0..r1` — the same `(i + 0.5) · spacing` expression
    /// [`UnitGrid::point`] evaluates, so the bounds brackets the exact
    /// engine's own coordinates.
    fn rect_of(&self, c0: usize, c1: usize, r0: usize, r1: usize) -> Rect {
        let s = self.spacing;
        Rect {
            x0: (c0 as f64 + 0.5) * s,
            x1: ((c1 - 1) as f64 + 0.5) * s,
            y0: (r0 as f64 + 0.5) * s,
            y1: ((r1 - 1) as f64 + 0.5) * s,
        }
    }

    fn intersects_range(&self, c0: usize, c1: usize, r0: usize, r1: usize) -> bool {
        let min_idx = r0 * self.gs + c0;
        let max_idx = (r1 - 1) * self.gs + c1 - 1;
        max_idx >= self.lo && min_idx < self.hi
    }

    /// In-range point count of the rectangle (each row is a contiguous
    /// index run, clipped to `lo..hi`).
    fn in_range_count(&self, c0: usize, c1: usize, r0: usize, r1: usize) -> usize {
        let mut n = 0usize;
        for r in r0..r1 {
            let base = r * self.gs;
            let a = (base + c0).max(self.lo);
            let b = (base + c1).min(self.hi);
            n += b.saturating_sub(a);
        }
        n
    }

    /// Attempts a certificate for the rectangle; fills `kept` with the
    /// candidates that survive the distance filter (the child nodes'
    /// candidate set). `None` means `Boundary`.
    fn classify(&mut self, rect: &Rect, cands: &[u32], kept: &mut Vec<u32>) -> Option<Cert> {
        self.stats.nodes += 1;
        kept.clear();
        let mut witnesses: Vec<(Angle, f64)> = Vec::new();
        for &ci in cands {
            let cam = &self.cams[ci as usize];
            let b = bound_camera(&self.torus, cam.pos, rect);
            if b.dmin > cam.radius + self.band {
                // Surely out of range for every rectangle point.
                continue;
            }
            kept.push(ci);
            if b.dmax + self.band < cam.radius {
                if let Some((center, half)) = b.cone {
                    let aov_ok = cam.aov >= TAU - ANGLE_EPS
                        || cam.orientation.distance(center.opposite()) + half + ANG_BAND
                            <= 0.5 * cam.aov;
                    if aov_ok {
                        witnesses.push((center, half));
                    }
                }
            }
        }
        if kept.is_empty() {
            return Some(Cert::Empty);
        }
        if witnesses.len() < self.k_nec.max(1) {
            return None;
        }
        let contains = |arc: &Arc, c: Angle, h: f64| {
            arc.is_full_circle() || arc.bisector().distance(c) + h + ANG_BAND <= 0.5 * arc.width()
        };
        // Disjoint witness families for the multiplicity bound: first-fit
        // each witness into one sufficient sector; taking one member per
        // sector forms `min occupancy` families, each of which alone
        // satisfies the sufficient condition everywhere in the rectangle.
        let mut per_sector = vec![0usize; self.sufficient.len()];
        'witness: for &(c, h) in &witnesses {
            for (si, arc) in self.sufficient.iter().enumerate() {
                if contains(arc, c, h) {
                    per_sector[si] += 1;
                    continue 'witness;
                }
            }
        }
        let groups = per_sector.iter().copied().min().unwrap_or(0);
        // For the flags proof sharing is fine: one witness direction may
        // satisfy two overlapping sectors, exactly as in
        // `SectorPartition::is_satisfied_by`.
        let flags_ok = witnesses.len() >= self.k_nec
            && self
                .sufficient
                .iter()
                .all(|arc| witnesses.iter().any(|&(c, h)| contains(arc, c, h)))
            && self
                .necessary
                .iter()
                .all(|arc| witnesses.iter().any(|&(c, h)| contains(arc, c, h)));
        if groups >= 1 || flags_ok {
            Some(Cert::Full { groups, flags_ok })
        } else {
            None
        }
    }

    /// Books and emits an accepted certificate; `false` means the sink
    /// rejected it (treat as `Boundary`).
    #[allow(clippy::too_many_arguments)]
    fn consume_cert<S: HierSink>(
        &mut self,
        cert: &Cert,
        sink: &mut S,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    ) -> bool {
        let accept = match *cert {
            Cert::Empty => true,
            Cert::Full { groups, flags_ok } => sink.accepts_full(groups, flags_ok),
        };
        if !accept {
            return false;
        }
        match cert {
            Cert::Empty => self.stats.proved_empty += 1,
            Cert::Full { .. } => self.stats.proved_full += 1,
        }
        self.stats.points_proved += self.in_range_count(c0, c1, r0, r1);
        sink.proved_rect(cert, self.gs, self.lo, self.hi, c0, c1, r0, r1);
        true
    }

    /// Phase 1: recursion over the tile-coordinate rectangle
    /// `[tx0, tx1) × [ty0, ty1)`.
    fn visit_tiles<S: HierSink>(
        &mut self,
        tx0: usize,
        tx1: usize,
        ty0: usize,
        ty1: usize,
        cands: &[u32],
        sink: &mut S,
    ) {
        let (c0, c1) = (self.starts[tx0], self.starts[tx1]);
        let (r0, r1) = (self.starts[ty0], self.starts[ty1]);
        if c0 == c1 || r0 == r1 || !self.intersects_range(c0, c1, r0, r1) {
            return;
        }
        let rect = self.rect_of(c0, c1, r0, r1);
        let mut kept = Vec::with_capacity(cands.len());
        if let Some(cert) = self.classify(&rect, cands, &mut kept) {
            if self.consume_cert(&cert, sink, c0, c1, r0, r1) {
                return;
            }
        }
        if tx1 - tx0 == 1 && ty1 - ty0 == 1 {
            self.visit_tile_leaf(ty0 * self.cells + tx0, c0, c1, r0, r1, &kept, sink);
            return;
        }
        let mx = tx0 + (tx1 - tx0) / 2;
        let my = ty0 + (ty1 - ty0) / 2;
        for (ax, bx) in [(tx0, mx), (mx, tx1)] {
            if ax == bx {
                continue;
            }
            for (ay, by) in [(ty0, my), (my, ty1)] {
                if ay == by {
                    continue;
                }
                self.visit_tiles(ax, bx, ay, by, &kept, sink);
            }
        }
    }

    /// A single `Boundary` tile: small tiles go wholesale through the
    /// engine's tile funnel; large tiles recurse in point space with the
    /// cursor pinned once.
    #[allow(clippy::too_many_arguments)]
    fn visit_tile_leaf<S: HierSink>(
        &mut self,
        t: usize,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
        cands: &[u32],
        sink: &mut S,
    ) {
        let points = (c1 - c0) * (r1 - r0);
        if points <= KERNEL_TILE_MAX {
            self.stats.tiles_exact += 1;
            self.stats.points_visited += self.in_range_count(c0, c1, r0, r1);
            sink.exact_tile(
                &mut self.cursor,
                &self.tiling,
                self.grid,
                t,
                self.lo,
                self.hi,
            );
            return;
        }
        let (cx, cy) = self.tiling.tile_cell(t);
        self.cursor.pin(cx, cy);
        self.visit_points(c0, c1, r0, r1, cands, sink);
    }

    /// Phase 2: recursion over point-space sub-rectangles inside one
    /// tile (cursor already pinned to the tile's cell).
    fn visit_points<S: HierSink>(
        &mut self,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
        cands: &[u32],
        sink: &mut S,
    ) {
        if c0 == c1 || r0 == r1 || !self.intersects_range(c0, c1, r0, r1) {
            return;
        }
        let points = (c1 - c0) * (r1 - r0);
        if points <= FLOOR_POINTS {
            self.stats.points_visited += self.in_range_count(c0, c1, r0, r1);
            sink.exact_rect(
                &self.cursor,
                self.grid,
                self.gs,
                self.lo,
                self.hi,
                c0,
                c1,
                r0,
                r1,
            );
            return;
        }
        let rect = self.rect_of(c0, c1, r0, r1);
        let mut kept = Vec::with_capacity(cands.len());
        if let Some(cert) = self.classify(&rect, cands, &mut kept) {
            if self.consume_cert(&cert, sink, c0, c1, r0, r1) {
                return;
            }
        }
        let mx = c0 + (c1 - c0) / 2;
        let my = r0 + (r1 - r0) / 2;
        for (ax, bx) in [(c0, mx), (mx, c1)] {
            if ax == bx {
                continue;
            }
            for (ay, by) in [(r0, my), (my, r1)] {
                if ay == by {
                    continue;
                }
                self.visit_points(ax, bx, ay, by, &kept, sink);
            }
        }
    }
}

/// Flags consumer: proven rectangles emit constant flags, residual
/// points run through the very evaluator the cold sweep uses.
struct FlagsSink<'f> {
    evaluator: GridEvaluator,
    f: &'f mut dyn FnMut(usize, PointFlags),
}

impl HierSink for FlagsSink<'_> {
    fn accepts_full(&self, _groups: usize, flags_ok: bool) -> bool {
        flags_ok
    }

    fn proved_rect(
        &mut self,
        cert: &Cert,
        gs: usize,
        lo: usize,
        hi: usize,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    ) {
        let flags = match cert {
            Cert::Empty => ALL_FALSE,
            Cert::Full { .. } => ALL_TRUE,
        };
        for r in r0..r1 {
            let base = r * gs;
            let a = (base + c0).max(lo);
            let b = (base + c1).min(hi);
            for idx in a..b {
                (self.f)(idx, flags);
            }
        }
    }

    fn exact_rect(
        &mut self,
        cursor: &TileCursor<'_>,
        grid: &UnitGrid,
        gs: usize,
        lo: usize,
        hi: usize,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    ) {
        for r in r0..r1 {
            let base = r * gs;
            for c in c0..c1 {
                let idx = base + c;
                if idx >= lo && idx < hi {
                    let flags = self.evaluator.point_flags_with(cursor, grid.point(idx));
                    (self.f)(idx, flags);
                }
            }
        }
    }

    fn exact_tile(
        &mut self,
        cursor: &mut TileCursor<'_>,
        tiling: &GridTiling,
        grid: &UnitGrid,
        t: usize,
        lo: usize,
        hi: usize,
    ) {
        let f = &mut self.f;
        self.evaluator
            .for_each_point_flags_in_tile(cursor, tiling, grid, t, &mut |idx, flags| {
                if idx >= lo && idx < hi {
                    (*f)(idx, flags);
                }
            });
    }
}

/// Multiplicity-count consumer for the `kcount` path: a `Full`
/// certificate with at least `k` disjoint witness families decides a
/// whole rectangle; residual points run the exact arc-depth sweep.
struct CountSink {
    analyzer: PointAnalyzer,
    theta_radians: f64,
    k: usize,
    count: usize,
}

impl CountSink {
    fn meets(&mut self, cursor: &TileCursor<'_>, point: Point) -> bool {
        let view = self.analyzer.analyze_point_with(cursor, point);
        let colocated_bonus = usize::from(view.has_colocated_camera);
        min_arc_depth(view.viewed_directions, self.theta_radians) + colocated_bonus >= self.k
    }
}

impl HierSink for CountSink {
    fn accepts_full(&self, groups: usize, _flags_ok: bool) -> bool {
        groups >= self.k
    }

    fn proved_rect(
        &mut self,
        cert: &Cert,
        gs: usize,
        lo: usize,
        hi: usize,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    ) {
        if matches!(cert, Cert::Empty) {
            // Multiplicity 0 < k (k = 0 never reaches the prover).
            return;
        }
        for r in r0..r1 {
            let base = r * gs;
            let a = (base + c0).max(lo);
            let b = (base + c1).min(hi);
            self.count += b.saturating_sub(a);
        }
    }

    fn exact_rect(
        &mut self,
        cursor: &TileCursor<'_>,
        grid: &UnitGrid,
        gs: usize,
        lo: usize,
        hi: usize,
        c0: usize,
        c1: usize,
        r0: usize,
        r1: usize,
    ) {
        for r in r0..r1 {
            let base = r * gs;
            for c in c0..c1 {
                let idx = base + c;
                if idx >= lo && idx < hi && self.meets(cursor, grid.point(idx)) {
                    self.count += 1;
                }
            }
        }
    }

    fn exact_tile(
        &mut self,
        cursor: &mut TileCursor<'_>,
        tiling: &GridTiling,
        grid: &UnitGrid,
        t: usize,
        lo: usize,
        hi: usize,
    ) {
        let (cx, cy) = tiling.tile_cell(t);
        cursor.pin(cx, cy);
        let cur: &TileCursor<'_> = cursor;
        let mut hits = 0usize;
        let mut analyzer = std::mem::replace(&mut self.analyzer, PointAnalyzer::new());
        let theta_radians = self.theta_radians;
        let k = self.k;
        tiling.for_each_point_in_tile(t, |idx| {
            if idx >= lo && idx < hi {
                let view = analyzer.analyze_point_with(cur, grid.point(idx));
                let colocated_bonus = usize::from(view.has_colocated_camera);
                if min_arc_depth(view.viewed_directions, theta_radians) + colocated_bonus >= k {
                    hits += 1;
                }
            }
        });
        self.analyzer = analyzer;
        self.count += hits;
    }
}

/// The hierarchical counterpart of [`fullview_core::sweep_flags_range`]:
/// calls `f(index, flags)` exactly once for every grid index in
/// `lo..hi` (order unspecified, as with the tile engine — key results
/// by index), with flags bit-identical to the exact engine's, and
/// returns what the prover decided without visiting points.
///
/// Grids where the tile path does not pay off delegate wholesale to the
/// core sweep.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > grid.len()`.
pub fn sweep_flags_range_hier<F: FnMut(usize, PointFlags)>(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    start_line: Angle,
    lo: usize,
    hi: usize,
    mut f: F,
) -> ProverStats {
    assert!(
        lo <= hi && hi <= grid.len(),
        "range {lo}..{hi} out of bounds for a grid of {} points",
        grid.len()
    );
    let mut stats = ProverStats::default();
    if lo == hi {
        return stats;
    }
    if !use_tiled(net, grid) {
        sweep_flags_range(net, grid, theta, start_line, lo, hi, |idx, flags| {
            f(idx, flags);
        });
        stats.points_visited = hi - lo;
        return stats;
    }
    let mut prover = Prover::new(net, grid, theta, start_line, lo, hi);
    let mut sink = FlagsSink {
        evaluator: GridEvaluator::new(theta, start_line),
        f: &mut f,
    };
    let cells = prover.cells;
    let all: Vec<u32> = (0..u32::try_from(net.len()).expect("camera count fits u32")).collect();
    prover.visit_tiles(0, cells, 0, cells, &all, &mut sink);
    prover.stats
}

/// The hierarchical counterpart of [`fullview_core::count_k_view_range`]:
/// counts the points of `lo..hi` whose view multiplicity is at least
/// `k`, using `Full` certificates with `≥ k` disjoint witness families
/// to decide whole rectangles and the exact arc-depth sweep for the
/// rest. The count equals the core function's exactly.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > grid.len()`.
pub fn count_k_view_range_hier(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    k: usize,
    lo: usize,
    hi: usize,
) -> (usize, ProverStats) {
    assert!(
        lo <= hi && hi <= grid.len(),
        "range {lo}..{hi} out of bounds for a grid of {} points",
        grid.len()
    );
    let mut stats = ProverStats::default();
    if k == 0 {
        return (hi - lo, stats);
    }
    if lo == hi {
        return (0, stats);
    }
    if !use_tiled(net, grid) {
        stats.points_visited = hi - lo;
        return (
            fullview_core::count_k_view_range(net, grid, theta, k, lo, hi),
            stats,
        );
    }
    let mut prover = Prover::new(net, grid, theta, Angle::ZERO, lo, hi);
    let mut sink = CountSink {
        analyzer: PointAnalyzer::new(),
        theta_radians: theta.radians(),
        k,
        count: 0,
    };
    let cells = prover.cells;
    let all: Vec<u32> = (0..u32::try_from(net.len()).expect("camera count fits u32")).collect();
    prover.visit_tiles(0, cells, 0, cells, &all, &mut sink);
    (sink.count, prover.stats)
}
