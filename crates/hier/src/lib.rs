//! # fullview-hier
//!
//! A hierarchical coarse-to-fine **coverage prover** layered above
//! `fullview-core`'s tile engine. A quadtree over the spatial-index
//! tiling computes conservative per-node bounds — minimum/maximum
//! wrapped camera distance over the node's rectangle and, per angular
//! sector, a conservative viewed-direction cone containment test — and
//! emits a certificate per node:
//!
//! * **`FullyCovered`** — every point of the rectangle provably passes
//!   all five coverage predicates (and, on the k-count path, provably
//!   reaches multiplicity `k`);
//! * **`Empty`** — no camera reaches any point of the rectangle;
//! * **`Boundary`** — undecided: recurse, and at the floor hand the
//!   surviving points to the exact/mask kernel through the *same*
//!   [`GridEvaluator`](fullview_core::GridEvaluator) funnel the cold
//!   sweep uses.
//!
//! Interior nodes are proven without visiting a single grid point, so
//! the combined answer is **bit-identical** to a cold
//! [`fullview_core::sweep_flags_range`] by construction — the exact
//! engine stays the oracle (differential tests pin this). What the
//! prover decided is reported as [`ProverStats`].
//!
//! ```
//! use fullview_core::EffectiveAngle;
//! use fullview_geom::{Angle, Point, Torus};
//! use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
//! use fullview_hier::full_view_mask_range_hier;
//! use std::f64::consts::PI;
//!
//! let torus = Torus::unit();
//! let spec = SensorSpec::new(0.2, PI)?;
//! // Deterministic low-discrepancy scatter of 40 cameras.
//! let cams: Vec<Camera> = (0..40)
//!     .map(|i| {
//!         let t = i as f64;
//!         let pos = Point::new((t * 0.618_034).fract(), (t * 0.381_966).fract());
//!         Camera::new(pos, Angle::new(t), spec, GroupId(0))
//!     })
//!     .collect();
//! let net = CameraNetwork::new(torus, cams);
//! let theta = EffectiveAngle::new(PI / 3.0)?;
//! let (mask, stats) = full_view_mask_range_hier(&net, theta, 48, 0, 48 * 48);
//! assert_eq!(mask.len(), 48 * 48);
//! assert_eq!(stats.points_proved + stats.points_visited, 48 * 48);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bounds;
mod prover;

pub use prover::{count_k_view_range_hier, sweep_flags_range_hier, ProverStats};

use fullview_core::{
    coverage_glyphs_range_with, coverage_map_from_glyphs, holes_from_mask, EffectiveAngle,
    GridCoverageReport, HoleReport,
};
use fullview_geom::{Angle, UnitGrid};
use fullview_model::CameraNetwork;

/// Hier-backed counterpart of [`fullview_core::coverage_glyphs_range`]:
/// the glyph row for grid indices `lo..hi` of a `side × side` grid,
/// byte-identical to the exact engine's, plus the prover stats.
///
/// # Panics
///
/// Panics if `side == 0`, `lo > hi`, or `hi > side²`.
#[must_use]
pub fn coverage_glyphs_range_hier(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    side: usize,
    lo: usize,
    hi: usize,
) -> (String, ProverStats) {
    assert!(side > 0, "grid side must be positive");
    let grid = UnitGrid::new(*net.torus(), side);
    let mut stats = ProverStats::default();
    let glyphs = coverage_glyphs_range_with(lo, hi, |emit| {
        stats = sweep_flags_range_hier(net, &grid, theta, Angle::ZERO, lo, hi, |idx, flags| {
            emit(idx, flags);
        });
    });
    (glyphs, stats)
}

/// Hier-backed counterpart of [`fullview_core::coverage_map_text`]: the
/// full rendered coverage map (legend plus `side` glyph rows),
/// byte-identical to the exact engine's, plus the prover stats.
///
/// # Panics
///
/// Panics if `side == 0`.
#[must_use]
pub fn coverage_map_text_hier(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    side: usize,
) -> (String, ProverStats) {
    let (glyphs, stats) = coverage_glyphs_range_hier(net, theta, side, 0, side * side);
    (coverage_map_from_glyphs(side, &glyphs), stats)
}

/// Hier-backed counterpart of [`fullview_core::full_view_mask_range`]:
/// `covered[idx - lo]` is the exact full-view verdict at grid index
/// `idx`, plus the prover stats.
///
/// # Panics
///
/// Panics if `grid_side == 0`, `lo > hi`, or `hi > grid_side²`.
#[must_use]
pub fn full_view_mask_range_hier(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid_side: usize,
    lo: usize,
    hi: usize,
) -> (Vec<bool>, ProverStats) {
    assert!(grid_side > 0, "grid side must be positive");
    let grid = UnitGrid::new(*net.torus(), grid_side);
    let mut stats = ProverStats::default();
    let mask = fullview_core::full_view_mask_range_with(lo, hi, |emit| {
        stats = sweep_flags_range_hier(net, &grid, theta, Angle::ZERO, lo, hi, |idx, flags| {
            emit(idx, flags);
        });
    });
    (mask, stats)
}

/// Hier-backed counterpart of [`fullview_core::find_holes`]: the same
/// [`HoleReport`] (identical `Display` bytes), plus the prover stats.
///
/// # Panics
///
/// Panics if `grid_side == 0`.
#[must_use]
pub fn find_holes_hier(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid_side: usize,
) -> (HoleReport, ProverStats) {
    let (mask, stats) = full_view_mask_range_hier(net, theta, grid_side, 0, grid_side * grid_side);
    (holes_from_mask(*net.torus(), grid_side, &mask), stats)
}

/// Hier-backed counterpart of [`fullview_core::evaluate_grid`]: the
/// same [`GridCoverageReport`] tallies (identical report), plus the
/// prover stats.
#[must_use]
pub fn evaluate_grid_hier(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid: &UnitGrid,
    start_line: Angle,
) -> (GridCoverageReport, ProverStats) {
    let mut report = GridCoverageReport::default();
    let stats = sweep_flags_range_hier(net, grid, theta, start_line, 0, grid.len(), |_, flags| {
        report.record(&flags);
    });
    (report, stats)
}
