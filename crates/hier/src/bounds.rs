//! Conservative interval bounds of one camera against an axis-aligned
//! rectangle of grid points on the torus.
//!
//! The prover never looks at individual grid points of a rectangle it
//! wants to certify; instead it bounds, over the whole closed rectangle
//! `[x0, x1] × [y0, y1]` of point centres, the wrapped displacement
//! `Δ = wrap(camera − point)` the exact engine would compute per point:
//!
//! * a per-axis interval of `wrap`-ped deltas, tracking whether the
//!   rectangle straddles the `±side/2` wrap seam on that axis;
//! * from the per-axis absolute-value intervals, lower/upper bounds on
//!   the camera distance (`dmin`, `dmax`);
//! * when neither axis straddles the seam, the **viewed-direction cone**:
//!   a closed arc `[center − half, center + half]` guaranteed to contain
//!   the viewed direction `atan2(Δy, Δx)` of *every* rectangle point.
//!
//! Every bound is widened by explicit margins (`DIST_BAND`, `ANG_BAND`,
//! `RECT_WIDEN`) several orders of magnitude above f64 rounding noise, so
//! a certificate built from these bounds implies the exact per-point
//! predicate *strictly* — any point the bounds cannot decide with margin
//! to spare is left to the exact engine.

use fullview_geom::Point;
use fullview_geom::Torus;

/// Absolute distance slack (scaled by the torus side at the call sites
/// via [`dist_band`]): a camera only counts as surely-in-range when
/// `dmax + band < r`, surely-out-of-range when `dmin > r + band`.
pub(crate) const DIST_BAND: f64 = 1e-9;

/// Angular slack for cone-in-sector and cone-in-field-of-view tests —
/// far above both `ANGLE_EPS` (1e-9) and f64 `atan2` noise (~1e-15), so
/// a containment proven here survives the exact engine's closed
/// comparisons with room to spare.
pub(crate) const ANG_BAND: f64 = 1e-7;

/// Outward widening of the delta rectangle before taking corner
/// directions, absorbing the rounding difference between the exact
/// engine's per-point `wrap(camera − point)` and our interval endpoints.
const RECT_WIDEN: f64 = 1e-12;

/// The distance slack for a torus of side `side` (the bands are absolute
/// quantities on the unit torus; scale them with the geometry).
pub(crate) fn dist_band(side: f64) -> f64 {
    DIST_BAND * side.max(1.0)
}

/// Closed rectangle of grid-point centres, in fundamental-domain
/// coordinates (`x0 <= x1`, `y0 <= y1`; a single point is a degenerate
/// rectangle with `x0 == x1`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Rect {
    pub x0: f64,
    pub x1: f64,
    pub y0: f64,
    pub y1: f64,
}

/// One axis of the wrapped-delta interval.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AxisBound {
    /// `Some((w0, w1))` when the delta is continuous over the rectangle
    /// (no `±side/2` seam crossing): every point's wrapped delta lies in
    /// `[w0, w1]`. `None` when the rectangle straddles the seam — only
    /// the absolute bounds below remain usable.
    pub cont: Option<(f64, f64)>,
    /// Lower bound of `|Δ|` over the rectangle.
    pub abs_lo: f64,
    /// Upper bound of `|Δ|` over the rectangle.
    pub abs_hi: f64,
}

/// `|x|` range over the closed interval `[a, b]`.
fn abs_range(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(a <= b);
    if a <= 0.0 && b >= 0.0 {
        (0.0, (-a).max(b))
    } else if a > 0.0 {
        (a, b)
    } else {
        (-b, -a)
    }
}

/// Bounds `wrap(cam − p)` for `p ∈ [p0, p1]` on a torus axis of length
/// `side`, using the torus' own wrap so the interval endpoints are the
/// very values the exact engine computes at the rectangle edges.
pub(crate) fn axis_bound(torus: &Torus, cam: f64, p0: f64, p1: f64) -> AxisBound {
    debug_assert!(p0 <= p1);
    let side = torus.side();
    let half = 0.5 * side;
    // cam − p is decreasing in p: p1 gives the smallest raw delta.
    let u0 = cam - p1;
    let u1 = cam - p0;
    if u1 - u0 >= side {
        // The rectangle spans the whole axis; the delta takes every value.
        return AxisBound {
            cont: None,
            abs_lo: 0.0,
            abs_hi: half,
        };
    }
    let w0 = torus.wrap_coord_delta(u0);
    let w1 = torus.wrap_coord_delta(u1);
    if w0 <= w1 && ((w1 - w0) - (u1 - u0)).abs() <= 1e-9 * side.max(1.0) {
        // Both endpoints wrapped by the same multiple of `side` and the
        // interval keeps its width: wrap is continuous over it, so every
        // interior delta lies in [w0, w1].
        let (abs_lo, abs_hi) = abs_range(w0, w1);
        AxisBound {
            cont: Some((w0, w1)),
            abs_lo,
            abs_hi,
        }
    } else {
        // Seam straddle: wrapped values split into [w0, half) ∪ [−half, w1].
        let (la, ha) = abs_range(w0, half);
        let (lb, hb) = abs_range(-half, w1);
        AxisBound {
            cont: None,
            abs_lo: la.min(lb),
            abs_hi: ha.max(hb),
        }
    }
}

/// Conservative camera-versus-rectangle bound: distance interval plus,
/// when available, the viewed-direction cone.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CamBound {
    /// Lower bound of the wrapped camera distance over the rectangle.
    pub dmin: f64,
    /// Upper bound of the wrapped camera distance over the rectangle.
    pub dmax: f64,
    /// Closed arc `[center − half, center + half]` containing every
    /// rectangle point's viewed direction towards the camera, or `None`
    /// when no such cone can be certified (seam straddle, camera inside
    /// or too close to the rectangle, or a cone too wide to be useful).
    pub cone: Option<(fullview_geom::Angle, f64)>,
}

pub(crate) fn bound_camera(torus: &Torus, cam: Point, rect: &Rect) -> CamBound {
    let bx = axis_bound(torus, cam.x, rect.x0, rect.x1);
    let by = axis_bound(torus, cam.y, rect.y0, rect.y1);
    let dmin = bx.abs_lo.hypot(by.abs_lo);
    let dmax = bx.abs_hi.hypot(by.abs_hi);
    let cone = match (bx.cont, by.cont) {
        (Some(dx), Some(dy)) => direction_cone(dx, dy),
        _ => None,
    };
    CamBound { dmin, dmax, cone }
}

/// The minimal closed arc containing `atan2(y, x)` over the delta
/// rectangle `[x0, x1] × [y0, y1]`, or `None` when the origin lies in
/// (or touches) the rectangle, the directions span (close to) a
/// half-circle, or the cone is too wide to prove anything.
///
/// For a convex region avoiding the origin, the direction extremes are
/// attained at vertices, so the arc spanned by the four corner
/// directions contains every interior point's direction.
fn direction_cone(
    (x0, x1): (f64, f64),
    (y0, y1): (f64, f64),
) -> Option<(fullview_geom::Angle, f64)> {
    use std::f64::consts::{FRAC_PI_2, PI, TAU};
    let (x0, x1) = (x0 - RECT_WIDEN, x1 + RECT_WIDEN);
    let (y0, y1) = (y0 - RECT_WIDEN, y1 + RECT_WIDEN);
    if x0 <= 0.0 && x1 >= 0.0 && y0 <= 0.0 && y1 >= 0.0 {
        // Origin inside: the directions wrap the whole circle.
        return None;
    }
    let corners = [(x0, y0), (x1, y0), (x1, y1), (x0, y1)];
    let a0 = corners[0].1.atan2(corners[0].0);
    let mut omin = 0.0f64;
    let mut omax = 0.0f64;
    for &(x, y) in &corners[1..] {
        let mut o = y.atan2(x) - a0;
        if o > PI {
            o -= TAU;
        } else if o < -PI {
            o += TAU;
        }
        if o.abs() > PI - 1e-6 {
            // Too close to a half-circle: the ± ambiguity of the
            // normalization could flip a corner to the wrong side.
            return None;
        }
        omin = omin.min(o);
        omax = omax.max(o);
    }
    let half = 0.5 * (omax - omin);
    if half >= FRAC_PI_2 {
        return None;
    }
    Some((fullview_geom::Angle::new(a0 + 0.5 * (omin + omax)), half))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Angle;

    /// Sample the rectangle: 4 corners, edge midpoints, and an interior
    /// lattice — every sample must respect the claimed bounds.
    fn rect_samples(rect: &Rect) -> Vec<Point> {
        let mut pts = Vec::new();
        let n = 7;
        for i in 0..=n {
            for j in 0..=n {
                let fx = i as f64 / n as f64;
                let fy = j as f64 / n as f64;
                pts.push(Point::new(
                    rect.x0 + fx * (rect.x1 - rect.x0),
                    rect.y0 + fy * (rect.y1 - rect.y0),
                ));
            }
        }
        pts
    }

    fn check_bound(torus: &Torus, cam: Point, rect: &Rect) {
        let b = bound_camera(torus, cam, rect);
        assert!(
            b.dmin <= b.dmax + 1e-12,
            "dmin {} > dmax {}",
            b.dmin,
            b.dmax
        );
        for p in rect_samples(rect) {
            let d = torus.distance(cam, p);
            assert!(
                b.dmin - 1e-9 <= d && d <= b.dmax + 1e-9,
                "distance {d} outside [{}, {}] for cam {cam} rect {rect:?} point {p}",
                b.dmin,
                b.dmax
            );
            if let Some((center, half)) = b.cone {
                if let Some(dir) = torus.direction(p, cam) {
                    assert!(
                        center.distance(dir) <= half + 1e-9,
                        "direction {dir} outside cone ({center}, {half}) for cam {cam} \
                         rect {rect:?} point {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn distance_and_cone_bounds_hold_over_sampled_rects() {
        let torus = Torus::unit();
        let rects = [
            Rect {
                x0: 0.10,
                x1: 0.30,
                y0: 0.40,
                y1: 0.55,
            },
            Rect {
                x0: 0.90,
                x1: 0.99,
                y0: 0.01,
                y1: 0.12,
            }, // near the seam
            Rect {
                x0: 0.47,
                x1: 0.47,
                y0: 0.47,
                y1: 0.47,
            }, // degenerate point
            Rect {
                x0: 0.02,
                x1: 0.97,
                y0: 0.45,
                y1: 0.52,
            }, // wide slab
        ];
        let cams = [
            Point::new(0.5, 0.5),
            Point::new(0.0, 0.0),
            Point::new(0.95, 0.05),
            Point::new(0.2, 0.8),
            Point::new(0.15, 0.45), // inside the first rect
        ];
        for rect in &rects {
            for &cam in &cams {
                check_bound(&torus, cam, rect);
            }
        }
    }

    #[test]
    fn seam_straddling_rect_disables_the_cone() {
        let torus = Torus::unit();
        // Camera at x=0.02 against a rect spanning x∈[0.05, 0.95]: the
        // wrapped Δx runs from +0.07 down through the −0.5/+0.5 seam to
        // −0.03, so no continuous interval exists on that axis.
        let rect = Rect {
            x0: 0.05,
            x1: 0.95,
            y0: 0.2,
            y1: 0.3,
        };
        let b = bound_camera(&torus, Point::new(0.02, 0.9), &rect);
        assert!(b.cone.is_none(), "straddling Δx must forfeit the cone");
        check_bound(&torus, Point::new(0.02, 0.9), &rect);
    }

    #[test]
    fn camera_inside_rect_has_zero_dmin_and_no_cone() {
        let torus = Torus::unit();
        let rect = Rect {
            x0: 0.2,
            x1: 0.4,
            y0: 0.2,
            y1: 0.4,
        };
        let b = bound_camera(&torus, Point::new(0.3, 0.3), &rect);
        assert_eq!(b.dmin, 0.0);
        assert!(b.cone.is_none(), "origin inside the delta rect");
    }

    #[test]
    fn cone_matches_brute_force_corner_directions() {
        let torus = Torus::unit();
        let rect = Rect {
            x0: 0.6,
            x1: 0.7,
            y0: 0.6,
            y1: 0.65,
        };
        let cam = Point::new(0.3, 0.3);
        let b = bound_camera(&torus, cam, &rect);
        let (center, half) = b.cone.expect("clean separation must yield a cone");
        // Every corner direction is inside, and the cone is not absurdly
        // wider than the corner spread.
        let mut max_dev = 0.0f64;
        for &(x, y) in &[
            (rect.x0, rect.y0),
            (rect.x1, rect.y0),
            (rect.x1, rect.y1),
            (rect.x0, rect.y1),
        ] {
            let dir = torus.direction(Point::new(x, y), cam).unwrap();
            let dev = center.distance(dir);
            assert!(dev <= half + 1e-9);
            max_dev = max_dev.max(dev);
        }
        assert!(
            half <= max_dev + 1e-6,
            "cone half {half} vs spread {max_dev}"
        );
    }

    #[test]
    fn abs_range_cases() {
        assert_eq!(abs_range(-2.0, 3.0), (0.0, 3.0));
        assert_eq!(abs_range(1.0, 3.0), (1.0, 3.0));
        assert_eq!(abs_range(-3.0, -1.0), (1.0, 3.0));
    }

    #[test]
    fn axis_bound_wraps_the_short_way() {
        let torus = Torus::unit();
        // Camera at 0.95, points in [0.02, 0.08]: the short way crosses
        // the seam with deltas near −0.1, continuous.
        let b = axis_bound(&torus, 0.95, 0.02, 0.08);
        let (w0, w1) = b.cont.expect("no straddle: deltas stay near −0.1");
        assert!(w0 <= w1);
        assert!((w0 - (-0.13)).abs() < 1e-9 && (w1 - (-0.07)).abs() < 1e-9);
        assert!((b.abs_lo - 0.07).abs() < 1e-9 && (b.abs_hi - 0.13).abs() < 1e-9);
    }

    #[test]
    fn full_span_axis_takes_every_delta() {
        let torus = Torus::unit();
        let b = axis_bound(&torus, 0.4, 0.0, 1.0);
        assert!(b.cont.is_none());
        assert_eq!(b.abs_lo, 0.0);
        assert_eq!(b.abs_hi, 0.5);
        let _ = Angle::ZERO; // keep the import exercised under cfg(test)
    }
}
