//! The `fvc` subcommand implementations.
//!
//! Each command builds its inputs from [`Cli`], runs the corresponding
//! library functionality, and prints a human-readable report. All
//! commands accept `--theta-deg` (default 45) and, where relevant,
//! `--radius`, `--aov-deg`, `--n`, and `--seed`.

use crate::args::{ArgError, Cli};
use fullview_bench::loadgen::{
    append_bench_entry, parse_mix, run_load, sweep, sweep_entry_json, LoadConfig,
};
use fullview_cluster::{ClusterConfig, Coordinator};
use fullview_core::{
    analyze_point, barrier_full_view, classify_csa, critical_esr, csa_necessary, csa_one_coverage,
    csa_sufficient, dense_grid, find_holes, is_full_view_covered, max_cameras_below_necessary,
    min_cameras_for_guarantee, prob_point_full_view_poisson, prob_point_full_view_uniform,
    prob_point_meets_necessary_poisson, prob_point_meets_sufficient_poisson,
    required_area_for_expected_fraction, sweep_grid, unsafe_directions, EffectiveAngle,
    SectorPartition,
};
use fullview_core::{evaluate_path, Path};
use fullview_deploy::{deploy_poisson, deploy_uniform};
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_hier::{coverage_glyphs_range_hier, evaluate_grid_hier, find_holes_hier};
use fullview_model::{
    empirical_profile, network_from_text, network_to_text, profile_from_text, CameraNetwork,
    NetworkProfile, SensorSpec,
};
use fullview_plan::{greedy_place, optimize_orientations, GreedyPlacer, OrientationPlanner};
use fullview_service::{Client, Response, Server, ServiceConfig};
use fullview_sim::evaluate_dense_grid_parallel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::io::{self, Write as _};

/// Runs the parsed command line; returns a process exit code message.
///
/// # Errors
///
/// Propagates argument and model errors with readable messages.
pub fn run(cli: &Cli) -> Result<(), Box<dyn Error>> {
    if let Some(sub) = cli.subcommand() {
        if let Some(allowed) = allowed_options(sub, cli.action()) {
            cli.reject_unknown(allowed)?;
        }
    }
    match cli.subcommand() {
        Some("csa") => cmd_csa(cli),
        Some("check") => cmd_check(cli),
        Some("poisson") => cmd_poisson(cli),
        Some("map") => cmd_map(cli),
        Some("holes") => cmd_holes(cli),
        Some("barrier") => cmd_barrier(cli),
        Some("plan") => cmd_plan(cli),
        Some("aim") => cmd_aim(cli),
        Some("point") => cmd_point(cli),
        Some("size") => cmd_size(cli),
        Some("route") => cmd_route(cli),
        Some("failures") => cmd_failures(cli),
        Some("save") => cmd_save(cli),
        Some("serve") => cmd_serve(cli),
        Some("query") => cmd_query(cli),
        Some("watch") => cmd_watch(cli),
        Some("cluster") => cmd_cluster(cli),
        Some("bench") => cmd_bench(cli),
        Some(other) => Err(Box::new(ArgError(format!(
            "unknown subcommand '{other}'\n{USAGE}"
        )))),
        None => {
            println!("{USAGE}");
            Ok(())
        }
    }
}

/// The options and flags each subcommand (and, for action subcommands
/// like `cluster`, each `sub action` pair) accepts; anything else is
/// rejected up front with a "did you mean" hint. `None` for a subcommand
/// or action we do not know (its own error message follows in `run`).
fn allowed_options(sub: &str, action: Option<&str>) -> Option<&'static [&'static str]> {
    const NETWORK: &[&str] = &[
        "theta-deg",
        "radius",
        "aov-deg",
        "n",
        "seed",
        "profile",
        "load",
    ];
    // Per-command extras on top of the shared network-building options.
    let allowed: &'static [&'static str] = match sub {
        "csa" => &["n", "theta-deg", "area"],
        "check" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "threads",
            "hier",
        ],
        "poisson" => &[
            "density",
            "theta-deg",
            "radius",
            "aov-deg",
            "seed",
            "profile",
            "threads",
        ],
        "map" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "side",
            "hier",
        ],
        "holes" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "grid",
            "hier",
        ],
        "barrier" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "grid",
            "addr",
        ],
        "plan" => &["theta-deg", "radius", "aov-deg", "grid", "budget"],
        "aim" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "grid",
            "candidates",
            "rounds",
        ],
        "point" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "x",
            "y",
            "verbose",
        ],
        "size" => &["theta-deg", "radius", "aov-deg", "n", "fraction", "profile"],
        "route" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "route",
            "step",
        ],
        "failures" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "p",
            "fail-seed",
            "threads",
        ],
        "save" => &["radius", "aov-deg", "n", "seed", "profile", "load", "out"],
        "serve" => &[
            "theta-deg",
            "radius",
            "aov-deg",
            "n",
            "seed",
            "profile",
            "load",
            "addr",
            "threads",
            "workers",
            "queue",
            "cache",
            "admit-rate",
            "admit-burst",
            "wal",
            "hier",
            "max-cells",
        ],
        "query" => &["addr", "req", "window", "deadline-ms"],
        "watch" => &["addr", "grid", "theta-deg", "count"],
        "cluster" => match action {
            Some("serve") => &[
                "addr",
                "shards",
                "chunks",
                "inflight",
                "retries",
                "backoff-ms",
                "backoff-cap-ms",
                "breaker-threshold",
                "snapshot-dir",
                "replicas",
                "max-cells",
            ],
            Some("status") => &["addr"],
            _ => return None,
        },
        "bench" => match action {
            Some("load") => &[
                "addr",
                "clients",
                "rate",
                "duration-ms",
                "mix",
                "sweep",
                "growth",
                "max-steps",
                "out",
                "id",
            ],
            _ => return None,
        },
        _ => return None,
    };
    debug_assert!(
        NETWORK.is_empty() || !allowed.is_empty(),
        "every table entry lists its options"
    );
    Some(allowed)
}

/// Top-level usage text.
pub const USAGE: &str = "\
fvc — full-view coverage analysis (Wu & Wang, ICDCS 2012)

USAGE: fvc <COMMAND> [--key value ...]

COMMANDS:
  csa      critical sensing areas and regime classification
             --n 1000 --theta-deg 45 [--area S]
  check    deploy uniformly at random and evaluate the dense grid
             --n 1000 --theta-deg 45 --radius 0.1 --aov-deg 90 [--seed 0]
  poisson  Theorems 3-4 + exact probability under Poisson deployment
             --density 800 --theta-deg 45 --radius 0.1 --aov-deg 90
  map      ASCII coverage map of a random deployment
             --n 900 --theta-deg 45 --radius 0.1 --aov-deg 90 [--side 48]
  holes    spatial full-view coverage holes of a random deployment
             --n 900 --theta-deg 45 --radius 0.1 --aov-deg 90 [--grid 24]
  barrier  barrier full-view coverage: is there a full-view-covered
           horizontal crossing path? (--addr asks a running daemon or
           cluster instead — identical output bytes)
             --n 900 --theta-deg 45 [--grid 24] [--addr 127.0.0.1:7411]
  plan     greedy deliberate placement to full-view cover the region
             --theta-deg 45 --radius 0.15 --aov-deg 90
  aim      re-orient a random deployment's cameras (fixed positions)
             --n 400 --theta-deg 45 --radius 0.15 --aov-deg 90
  point    analyse one point of a random deployment
             --x 0.5 --y 0.5 --n 1000 --theta-deg 45 --radius 0.1 --aov-deg 90
  size     fleet sizing: Theorem 1/2 bounds and exact-fraction targets
             --radius 0.1 --aov-deg 90 --theta-deg 45 [--n 1000 --fraction 0.95]
  failures what-if: random camera failures on a deployment
             --n 1000 --p 0.3 --radius 0.1 --aov-deg 90 [--load net.txt]
  route    full-view coverage along a patrol route
             --route 0.1,0.1:0.9,0.1:0.9,0.9 [--step 0.01] [--load net.txt]
  save     write a generated deployment to the text format
             --out net.txt --n 1000 --radius 0.1 --aov-deg 90 [--seed 0]
  serve    run the coverage-evaluation daemon (TCP, line protocol)
             --addr 127.0.0.1:7411 --n 400 [--workers 2 --queue 64 --cache 128]
             [--admit-rate R --admit-burst B]  per-client admission control
             (R requests/s refill, burst B; 0 = no limit; clients identify
             with 'hello client=NAME', unnamed traffic shares 'anon')
             [--wal PATH]  crash-safe persistence: restore PATH (snapshot)
             + PATH.wal (journal) on start, journal every mutation before
             applying; 'snapshot' (no path) checkpoints and truncates
             [--hier]  answer grid queries through the hierarchical
             prover (identical bytes; prover tallies under 'stats')
             [--max-cells N]  reject grid requests over N cells with a
             named err instead of attempting them
  query    send requests to a running daemon or cluster over one
           persistent connection; repeat --req to pipeline several
             --addr 127.0.0.1:7411 --req 'map side=24' --req stats
             (also: check, holes, kfull, prob, barrier grid=N,
             fail id=N, move id=N x=X y=Y, reseed seed=S, ping, shutdown)
             [--deadline-ms MS]  per-request budget appended to query
             verbs; queued work past the budget is shed with an err
  watch    subscribe to live coverage deltas from a daemon or cluster;
           prints the baseline then one frame per fleet mutation
             --addr 127.0.0.1:7411 [--grid 24 --theta-deg 45 --count 0]
             (--count N exits after N deltas; 0 streams forever)
  cluster  front N daemons with a scatter-gather coordinator
             serve  --shards 127.0.0.1:7411,127.0.0.1:7413
                    [--addr 127.0.0.1:7412 --snapshot-dir DIR --chunks C
                     --inflight W --retries R --backoff-ms B --replicas K
                     --breaker-threshold F]  (a shard's circuit breaker
                     trips open after F consecutive failures and re-probes
                     on a doubling cooldown capped at --backoff-cap-ms)
                    (--replicas K groups consecutive shards into replica
                     sets: reads balance across the least-loaded live
                     replica, mutations broadcast to every shard)
                    [--max-cells N]  coordinator-side grid budget: reject
                     oversized ranged queries before scattering them
             status [--addr 127.0.0.1:7412]
  bench    drive a daemon or cluster with an open-loop load generator
             load   --addr 127.0.0.1:7411 [--clients 4 --rate 200
                     --duration-ms 2000 --mix 'check=3,ping=1']
                    [--sweep --growth 2 --max-steps 6]  step rate until
                     saturation (achieved < 90% of target or >10% busy)
                    [--out BENCH_sweep.json --id bench_load/default]

Most commands accept --load FILE to analyse a saved network (see `save`)
instead of generating a random one, and --profile FILE to use a
heterogeneous mix (text format: one 'fraction radius aov_rad' per line).
Dense-grid commands (check, poisson, failures) accept --threads N to
parallelise the grid sweep (0 = one per CPU; results are identical for
every thread count). map, holes, and check accept --hier to sweep via
the hierarchical coverage prover: byte-identical output, large grids
(sides in the tens of thousands) become practical, prover tallies print
on stderr.";

fn theta_of(cli: &Cli) -> Result<EffectiveAngle, Box<dyn Error>> {
    let deg: f64 = cli.get("theta-deg", 45.0)?;
    Ok(EffectiveAngle::new(deg.to_radians())?)
}

/// Worker threads for dense-grid sweeps: `--threads N` (`0` = one per
/// available CPU, the default). Bit-identical results for every value.
fn threads_of(cli: &Cli) -> Result<usize, Box<dyn Error>> {
    Ok(cli.get("threads", 0usize)?)
}

fn spec_of(cli: &Cli) -> Result<SensorSpec, Box<dyn Error>> {
    let radius: f64 = cli.get("radius", 0.1)?;
    let aov: f64 = cli.get("aov-deg", 90.0)?;
    Ok(SensorSpec::new(radius, aov.to_radians())?)
}

/// The heterogeneous profile in effect: `--profile FILE` if given,
/// otherwise homogeneous from `--radius`/`--aov-deg`.
fn profile_of(cli: &Cli) -> Result<NetworkProfile, Box<dyn Error>> {
    let path: String = cli.get("profile", String::new())?;
    if path.is_empty() {
        return Ok(NetworkProfile::homogeneous(spec_of(cli)?));
    }
    let text = std::fs::read_to_string(&path)?;
    Ok(profile_from_text(&text)?)
}

fn network_of(cli: &Cli) -> Result<(NetworkProfile, CameraNetwork), Box<dyn Error>> {
    let load: String = cli.get("load", String::new())?;
    if !load.is_empty() {
        let text = std::fs::read_to_string(&load)?;
        let net = network_from_text(Torus::unit(), &text)?;
        // Prefer the as-built composition when it is recoverable.
        let profile = empirical_profile(&net).map_or_else(|| profile_of(cli), Ok)?;
        return Ok((profile, net));
    }
    let profile = profile_of(cli)?;
    let n: usize = cli.get("n", 1000)?;
    let seed: u64 = cli.get("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng)?;
    Ok((profile, net))
}

fn parse_route(raw: &str) -> Result<Path, Box<dyn Error>> {
    let mut waypoints = Vec::new();
    for (i, part) in raw.split(':').enumerate() {
        let (x, y) = part
            .split_once(',')
            .ok_or_else(|| ArgError(format!("waypoint {} '{part}' is not 'x,y'", i + 1)))?;
        waypoints.push(Point::new(x.trim().parse()?, y.trim().parse()?));
    }
    if waypoints.len() < 2 {
        return Err(Box::new(ArgError(
            "route needs at least two waypoints".into(),
        )));
    }
    Ok(Path::new(waypoints))
}

fn cmd_route(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let (_, net) = network_of(cli)?;
    let raw: String = cli.get("route", "0.1,0.1:0.9,0.9".to_string())?;
    let step: f64 = cli.get("step", 0.01)?;
    let path = parse_route(&raw)?;
    let report = evaluate_path(&net, &path, theta, step);
    println!("{report}");
    for (i, stretch) in report.exposed.iter().take(10).enumerate() {
        println!(
            "  exposed stretch {}: {} samples from index {}, ~{:.4} long",
            i + 1,
            stretch.samples,
            stretch.start_index,
            stretch.length
        );
    }
    Ok(())
}

fn cmd_failures(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let threads = threads_of(cli)?;
    let (_, net) = network_of(cli)?;
    let p: f64 = cli.get("p", 0.3)?;
    let seed: u64 = cli.get("fail-seed", 1)?;
    let before = evaluate_dense_grid_parallel(&net, theta, Angle::ZERO, threads);
    let mut rng = StdRng::seed_from_u64(seed);
    let failed = fullview_sim::with_random_failures(&net, p, &mut rng);
    let after = evaluate_dense_grid_parallel(&failed, theta, Angle::ZERO, threads);
    println!("before: {} cameras, {before}", net.len());
    println!("after p={p} failures: {} cameras, {after}", failed.len());
    println!(
        "full-view fraction {:.4} -> {:.4}",
        before.full_view_fraction(),
        after.full_view_fraction()
    );
    Ok(())
}

fn cmd_save(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let out: String = cli.get("out", String::new())?;
    if out.is_empty() {
        return Err(Box::new(ArgError("--out FILE is required".into())));
    }
    let (_, net) = network_of(cli)?;
    std::fs::write(&out, network_to_text(&net))?;
    println!("wrote {} cameras to {out}", net.len());
    Ok(())
}

fn cmd_csa(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let n: usize = cli.get("n", 1000)?;
    let theta = theta_of(cli)?;
    let s_nc = csa_necessary(n, theta);
    let s_sc = csa_sufficient(n, theta);
    println!("n = {n}, {theta}");
    println!("  necessary CSA  s_Nc(n) = {s_nc:.6}");
    println!(
        "  sufficient CSA s_Sc(n) = {s_sc:.6}  (ratio {:.2})",
        s_sc / s_nc
    );
    println!("  1-coverage CSA          = {:.6}", csa_one_coverage(n));
    println!("  critical ESR            = {:.6}", critical_esr(n));
    let area: f64 = cli.get("area", f64::NAN)?;
    if area.is_finite() {
        println!(
            "  your weighted area {area:.6} → regime {:?}",
            classify_csa(area, n, theta)
        );
    }
    Ok(())
}

fn cmd_check(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let (profile, net) = network_of(cli)?;
    let s_c = profile.weighted_sensing_area();
    println!(
        "deployed {} cameras (s_c = {s_c:.6}, regime {:?})",
        net.len(),
        classify_csa(s_c, net.len().max(3), theta)
    );
    // `--hier` sweeps the same dense grid through the hierarchical
    // prover: identical report bytes on stdout, prover stats on stderr.
    let report = if cli.flag("hier") {
        let grid = dense_grid(*net.torus(), net.len());
        let (report, stats) = evaluate_grid_hier(&net, theta, &grid, Angle::ZERO);
        eprintln!("hier: {stats}");
        report
    } else {
        evaluate_dense_grid_parallel(&net, theta, Angle::ZERO, threads_of(cli)?)
    };
    println!("{report}");
    println!(
        "exact per-point full-view probability (theory): {:.4}",
        prob_point_full_view_uniform(&profile, net.len(), theta)
    );
    Ok(())
}

fn cmd_poisson(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let density: f64 = cli.get("density", 800.0)?;
    let seed: u64 = cli.get("seed", 0)?;
    let profile = profile_of(cli)?;
    println!("density {density}, {theta}");
    println!(
        "  P_N (Theorem 3) = {:.4}",
        prob_point_meets_necessary_poisson(&profile, density, theta)
    );
    println!(
        "  P_S (Theorem 4) = {:.4}",
        prob_point_meets_sufficient_poisson(&profile, density, theta)
    );
    println!(
        "  exact P(full-view) = {:.4}",
        prob_point_full_view_poisson(&profile, density, theta)
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let net = deploy_poisson(Torus::unit(), &profile, density, &mut rng)?;
    let report = evaluate_dense_grid_parallel(&net, theta, Angle::ZERO, threads_of(cli)?);
    println!("one sampled drop ({} cameras): {report}", net.len());
    Ok(())
}

fn cmd_map(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let (_, net) = network_of(cli)?;
    let side: usize = cli.get("side", 48)?;
    let grid = UnitGrid::new(Torus::unit(), side);
    let necessary = SectorPartition::necessary(theta, Angle::ZERO);
    let sufficient = SectorPartition::sufficient(theta, Angle::ZERO);
    println!("legend: '#' sufficient, 'F' full-view, 'n' necessary, '.' covered, ' ' bare\n");
    // Tile-coherent sweep through the shared engine; points arrive in tile
    // order, so render into an index-keyed buffer before printing rows.
    // `--hier` routes the sweep through the hierarchical prover instead
    // (identical glyph bytes; prover stats go to stderr), which is what
    // makes sides in the tens of thousands practical.
    let cells: Vec<char> = if cli.flag("hier") {
        let (glyphs, stats) = coverage_glyphs_range_hier(&net, theta, side, 0, side * side);
        eprintln!("hier: {stats}");
        glyphs.chars().collect()
    } else {
        let mut cells = vec![' '; grid.len()];
        sweep_grid(&net, &grid, |idx, _, view| {
            cells[idx] = if sufficient.is_satisfied_view(view) {
                '#'
            } else if view.is_full_view(theta) {
                'F'
            } else if necessary.is_satisfied_view(view) {
                'n'
            } else if view.covering_cameras > 0 {
                '.'
            } else {
                ' '
            };
        });
        cells
    };
    for j in (0..side).rev() {
        let row: String = cells[j * side..(j + 1) * side].iter().collect();
        println!("|{row}|");
    }
    Ok(())
}

fn cmd_holes(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let (_, net) = network_of(cli)?;
    let grid: usize = cli.get("grid", 24)?;
    // `--hier`: same mask (hence the same report bytes) through the
    // hierarchical prover; prover stats go to stderr.
    let report = if cli.flag("hier") {
        let (report, stats) = find_holes_hier(&net, theta, grid);
        eprintln!("hier: {stats}");
        report
    } else {
        find_holes(&net, theta, grid)
    };
    println!("{report}");
    for (i, hole) in report.holes.iter().take(10).enumerate() {
        println!(
            "  hole {}: {} cells (~{:.4} area) around {}",
            i + 1,
            hole.cells,
            hole.area,
            hole.centroid
        );
    }
    if report.hole_count() > 10 {
        println!("  … and {} more", report.hole_count() - 10);
    }
    Ok(())
}

/// `fvc barrier` — barrier (weak-barrier) full-view coverage: does a
/// horizontal full-view-covered path cross the region? Runs locally on a
/// generated/loaded network, or — with `--addr` — asks a running daemon
/// or cluster coordinator and prints the identical bytes.
fn cmd_barrier(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let grid: usize = cli.get("grid", 24)?;
    let addr: String = cli.get("addr", String::new())?;
    if !addr.is_empty() {
        // Daemon mode: only theta and grid travel; the fleet lives
        // server-side. Forward theta verbatim so both sides parse the
        // identical token.
        let theta_deg: f64 = cli.get("theta-deg", f64::NAN)?;
        let mut line = format!("barrier grid={grid}");
        if theta_deg.is_finite() {
            line.push_str(&format!(" theta-deg={theta_deg}"));
        }
        let mut client = Client::connect(&addr)?;
        return match client.request(&line)? {
            Response::Ok(payload) => {
                print!("{payload}");
                Ok(())
            }
            Response::Err(message) => Err(Box::new(ArgError(format!("server: {message}")))),
        };
    }
    let theta = theta_of(cli)?;
    let (_, net) = network_of(cli)?;
    let report = barrier_full_view(&net, theta, grid);
    println!("{report}");
    Ok(())
}

fn cmd_plan(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let spec = spec_of(cli)?;
    let mut placer = GreedyPlacer::for_spec(spec);
    placer.grid_side = cli.get("grid", 16)?;
    placer.max_cameras = cli.get("budget", 2000)?;
    let outcome = greedy_place(Torus::unit(), theta, placer);
    println!("{outcome}");
    println!("for comparison, Theorem 2 random deployment needs s >= s_Sc(n): try `fvc csa`");
    Ok(())
}

fn cmd_aim(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let (_, net) = network_of(cli)?;
    let planner = OrientationPlanner {
        grid_side: cli.get("grid", 20)?,
        candidates: cli.get("candidates", 16)?,
        max_rounds: cli.get("rounds", 3)?,
    };
    let outcome = optimize_orientations(&net, theta, planner);
    println!("{outcome}");
    let eval_points = (planner.grid_side * planner.grid_side) as f64;
    println!(
        "covered fraction: {:.4} -> {:.4}",
        outcome.before.covered as f64 / eval_points,
        outcome.after.covered as f64 / eval_points
    );
    Ok(())
}

fn cmd_size(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let spec = spec_of(cli)?;
    let s = spec.sensing_area();
    println!("camera: {spec}, {theta}");
    match min_cameras_for_guarantee(s, theta) {
        Ok(n) => println!("  Theorem 2 guarantee:   n ≥ {n}"),
        Err(e) => println!("  Theorem 2 guarantee:   {e}"),
    }
    match max_cameras_below_necessary(s, theta)? {
        Some(n) => println!("  Theorem 1 impossible:  n ≤ {n}"),
        None => println!("  Theorem 1 impossible:  never (budget above the necessary CSA)"),
    }
    let n: usize = cli.get("n", 1000)?;
    let fraction: f64 = cli.get("fraction", 0.95)?;
    let profile = profile_of(cli)?;
    let s_needed = required_area_for_expected_fraction(&profile, n, theta, fraction)?;
    let per_camera_ratio = s_needed / s;
    println!(
        "  expected fraction ≥ {fraction} at n = {n}: total weighted area {s_needed:.5} \
         ({per_camera_ratio:.2}x this camera)"
    );
    Ok(())
}

fn cmd_point(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let theta = theta_of(cli)?;
    let (_, net) = network_of(cli)?;
    let x: f64 = cli.get("x", 0.5)?;
    let y: f64 = cli.get("y", 0.5)?;
    let p = Point::new(x, y);
    let analysis = analyze_point(&net, p);
    println!(
        "point {p}: {} covering cameras, largest gap {:.4} rad",
        analysis.covering_cameras, analysis.largest_gap
    );
    println!(
        "full-view covered: {}",
        is_full_view_covered(&net, p, theta)
    );
    if let Some(t) = analysis.critical_theta() {
        println!("critical effective angle here: {t:.4} rad");
    }
    let limit = if cli.flag("verbose") { usize::MAX } else { 8 };
    for hole in unsafe_directions(&net, p, theta).iter().take(limit) {
        println!(
            "  unsafe facing arc: centre {}, width {:.4} rad",
            hole.bisector(),
            hole.width()
        );
    }
    Ok(())
}

/// Builds a [`ServiceConfig`] from `fvc serve` options. Split from
/// [`cmd_serve`] so the option mapping is testable without binding a
/// socket or blocking on the daemon.
fn serve_config(cli: &Cli) -> Result<ServiceConfig, Box<dyn Error>> {
    let profile = profile_of(cli)?;
    let mut config = ServiceConfig::new(profile);
    config.addr = cli.get("addr", "127.0.0.1:7411".to_string())?;
    config.n = cli.get("n", 400)?;
    config.seed = cli.get("seed", 0)?;
    config.theta = theta_of(cli)?;
    config.eval_threads = threads_of(cli)?;
    config.workers = cli.get("workers", 2usize)?;
    config.queue_capacity = cli.get("queue", 64usize)?;
    config.cache_capacity = cli.get("cache", 128usize)?;
    config.admit_rate = cli.get("admit-rate", config.admit_rate)?;
    config.admit_burst = cli.get("admit-burst", config.admit_burst)?;
    config.hier = cli.flag("hier");
    config.max_cells = cli.get("max-cells", config.max_cells)?;
    let wal: String = cli.get("wal", String::new())?;
    if !wal.is_empty() {
        config.wal = Some(wal.into());
    }
    let load: String = cli.get("load", String::new())?;
    if !load.is_empty() {
        let text = std::fs::read_to_string(&load)?;
        let net = network_from_text(Torus::unit(), &text)?;
        // Prefer the as-built composition for theory endpoints when it
        // is recoverable (same policy as the one-shot commands).
        if let Some(profile) = empirical_profile(&net) {
            config.profile = profile;
        }
        config.preloaded = Some(net);
    }
    Ok(config)
}

fn cmd_serve(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let server = Server::start(serve_config(cli)?)?;
    let addr = server.local_addr();
    println!("fullview-service listening on {addr}");
    println!("stop with: fvc query --addr {addr} --req shutdown");
    server.wait();
    println!("fullview-service stopped");
    Ok(())
}

fn cmd_query(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let addr: String = cli.get("addr", "127.0.0.1:7411".to_string())?;
    let reqs: Vec<&str> = cli.get_all("req").collect();
    if reqs.is_empty() {
        return Err(Box::new(ArgError(
            "--req REQUEST is required (e.g. --req 'map side=24'; repeat to pipeline)".into(),
        )));
    }
    let window: usize = cli.get("window", 8usize)?;
    if window == 0 {
        return Err(Box::new(ArgError("--window must be positive".into())));
    }
    // `--deadline-ms` decorates the query verbs only: budgets mean
    // nothing to mutations, stats, or control verbs, and the server
    // would reject the unknown parameter there.
    let deadline_ms: u64 = cli.get("deadline-ms", u64::MAX)?;
    let reqs: Vec<String> = reqs
        .iter()
        .map(|r| {
            let verb = r.split_whitespace().next().unwrap_or("");
            let budgeted = matches!(
                verb,
                "check"
                    | "prob"
                    | "map"
                    | "holes"
                    | "kfull"
                    | "cells"
                    | "mask"
                    | "kcount"
                    | "barrier"
            );
            if deadline_ms != u64::MAX && budgeted {
                format!("{r} deadline_ms={deadline_ms}")
            } else {
                (*r).to_string()
            }
        })
        .collect();
    let reqs: Vec<&str> = reqs.iter().map(String::as_str).collect();
    // One persistent connection; all requests pipelined through it with a
    // bounded in-flight window, answers printed in request order.
    let mut client = Client::connect(&addr)?;
    let responses = client.pipeline(&reqs, window)?;
    let mut failures: Vec<String> = Vec::new();
    for (req, response) in reqs.iter().zip(responses) {
        match response {
            Response::Ok(payload) => print!("{payload}"),
            Response::Err(message) => failures.push(format!("'{req}': {message}")),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(Box::new(ArgError(format!(
            "server rejected {} of {} requests: {}",
            failures.len(),
            reqs.len(),
            failures.join("; ")
        ))))
    }
}

/// `fvc watch` — subscribe to a daemon's (or cluster's) delta stream and
/// print frames as mutations land. The subscription holds the connection
/// open, so this is a dedicated command rather than a `query` request.
fn cmd_watch(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let addr: String = cli.get("addr", "127.0.0.1:7411".to_string())?;
    let grid: usize = cli.get("grid", 24usize)?;
    let count: usize = cli.get("count", 0usize)?;
    let theta_deg: f64 = cli.get("theta-deg", f64::NAN)?;
    let mut line = format!("watch grid={grid}");
    if !theta_deg.is_nan() {
        line.push_str(&format!(" theta-deg={theta_deg}"));
    }
    let mut client = Client::connect(&addr)?;
    match client.request(&line)? {
        Response::Ok(baseline) => print!("{baseline}"),
        Response::Err(message) => {
            return Err(Box::new(ArgError(format!("server: {message}"))));
        }
    }
    // Frames arrive at mutation cadence, not print cadence: flush after
    // every frame so pipes and files see each delta as it lands.
    io::stdout().flush()?;
    let mut seen = 0usize;
    while count == 0 || seen < count {
        match client.recv() {
            Ok(Response::Ok(frame)) => {
                print!("{frame}");
                io::stdout().flush()?;
                seen += 1;
            }
            Ok(Response::Err(message)) => {
                return Err(Box::new(ArgError(format!("server: {message}"))));
            }
            Err(e) if count == 0 => {
                // Open-ended stream: the server going away is the normal
                // way a forever-watch ends.
                eprintln!("watch ended: {e}");
                break;
            }
            Err(e) => {
                return Err(Box::new(ArgError(format!(
                    "stream ended after {seen} of {count} deltas: {e}"
                ))));
            }
        }
    }
    Ok(())
}

/// Builds a [`ClusterConfig`] from `fvc cluster serve` options. Split
/// from [`cmd_cluster_serve`] so the mapping is testable without binding
/// sockets or blocking on the coordinator.
fn cluster_config(cli: &Cli) -> Result<ClusterConfig, Box<dyn Error>> {
    let raw: String = cli.get("shards", String::new())?;
    let shard_addrs: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if shard_addrs.is_empty() {
        return Err(Box::new(ArgError(
            "--shards ADDR[,ADDR...] is required (running fvc serve daemons to front)".into(),
        )));
    }
    let mut config = ClusterConfig::new(shard_addrs);
    config.addr = cli.get("addr", "127.0.0.1:7412".to_string())?;
    config.chunks = cli.get("chunks", config.chunks)?;
    config.max_inflight = cli.get("inflight", config.max_inflight)?;
    config.retries = cli.get("retries", config.retries)?;
    config.backoff_ms = cli.get("backoff-ms", config.backoff_ms)?;
    config.backoff_cap_ms = cli.get("backoff-cap-ms", config.backoff_cap_ms)?;
    config.breaker_threshold = cli.get("breaker-threshold", config.breaker_threshold)?;
    config.replication = cli.get("replicas", config.replication)?;
    config.max_cells = cli.get("max-cells", config.max_cells)?;
    let dir: String = cli.get("snapshot-dir", String::new())?;
    if !dir.is_empty() {
        config.snapshot_dir = Some(dir.into());
    }
    Ok(config)
}

fn cmd_cluster(cli: &Cli) -> Result<(), Box<dyn Error>> {
    match cli.action() {
        Some("serve") => cmd_cluster_serve(cli),
        Some("status") => cmd_cluster_status(cli),
        Some(other) => Err(Box::new(ArgError(format!(
            "unknown cluster action '{other}' (known: serve, status)"
        )))),
        None => Err(Box::new(ArgError(
            "cluster needs an action: serve or status".into(),
        ))),
    }
}

fn cmd_cluster_serve(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let config = cluster_config(cli)?;
    let shard_count = config.shard_addrs.len();
    let coordinator = Coordinator::start(config)?;
    let addr = coordinator.local_addr();
    println!("fullview-cluster coordinator listening on {addr} ({shard_count} shards)");
    println!("stop with: fvc query --addr {addr} --req shutdown");
    coordinator.wait();
    println!("fullview-cluster coordinator stopped");
    Ok(())
}

fn cmd_cluster_status(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let addr: String = cli.get("addr", "127.0.0.1:7412".to_string())?;
    let mut client = Client::connect(&addr)?;
    let batch = client.pipeline(&["shards", "stats"], 2)?;
    for response in batch {
        match response {
            Response::Ok(payload) => print!("{payload}"),
            Response::Err(message) => {
                return Err(Box::new(ArgError(format!("server: {message}"))));
            }
        }
    }
    Ok(())
}

/// Builds a [`LoadConfig`] from `fvc bench load` options. Split from
/// [`cmd_bench_load`] so the mapping is testable without a live daemon.
fn load_config(cli: &Cli) -> Result<LoadConfig, Box<dyn Error>> {
    let addr: String = cli.get("addr", "127.0.0.1:7411".to_string())?;
    let mut config = LoadConfig::new(addr);
    config.clients = cli.get("clients", config.clients)?;
    config.rate = cli.get("rate", config.rate)?;
    config.duration = std::time::Duration::from_millis(cli.get("duration-ms", 2000u64)?);
    let mix: String = cli.get("mix", String::new())?;
    if !mix.is_empty() {
        config.mix = parse_mix(&mix).map_err(ArgError)?;
    }
    Ok(config)
}

fn cmd_bench(cli: &Cli) -> Result<(), Box<dyn Error>> {
    match cli.action() {
        Some("load") => cmd_bench_load(cli),
        Some(other) => Err(Box::new(ArgError(format!(
            "unknown bench action '{other}' (known: load)"
        )))),
        None => Err(Box::new(ArgError("bench needs an action: load".into()))),
    }
}

fn cmd_bench_load(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let config = load_config(cli)?;
    let reports = if cli.flag("sweep") {
        let growth: f64 = cli.get("growth", 2.0)?;
        let max_steps: usize = cli.get("max-steps", 6usize)?;
        if growth <= 1.0 {
            return Err(Box::new(ArgError("--growth must be > 1".into())));
        }
        sweep(&config, growth, max_steps).map_err(ArgError)?
    } else {
        vec![run_load(&config).map_err(ArgError)?]
    };
    for report in &reports {
        println!("{}", report.summary());
    }
    // The saturation throughput is the last step the server kept up with;
    // when even the first step saturates, report that step's achieved rate.
    let last = reports.last().expect("at least one report");
    let best = reports
        .iter()
        .rev()
        .find(|r| !r.saturated())
        .unwrap_or(last);
    if last.saturated() {
        println!(
            "saturation: reached at {:.0} rps target ({:.0} rps achieved)",
            last.target_rate,
            best.achieved_rate()
        );
    } else {
        println!(
            "saturation: not reached ({:.0} rps achieved at {:.0} rps target)",
            best.achieved_rate(),
            best.target_rate
        );
    }
    // When the target keeps per-shard read tallies (a replicated
    // coordinator), show how the reads spread across the replicas.
    if let Ok(mut client) = Client::connect(&config.addr) {
        if let Ok(stats) = client.request_ok("stats") {
            if let Some(line) = stats.lines().find(|l| l.starts_with("reads: ")) {
                println!("{line}");
            }
        }
    }
    let out: String = cli.get("out", String::new())?;
    if !out.is_empty() {
        let id: String = cli.get("id", "bench_load/default".to_string())?;
        let entry = sweep_entry_json(&id, best);
        append_bench_entry(std::path::Path::new(&out), &id, &entry)?;
        println!("recorded '{id}' in {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn csa_command_runs() {
        run(&cli(&[
            "csa",
            "--n",
            "500",
            "--theta-deg",
            "45",
            "--area",
            "0.02",
        ]))
        .unwrap();
    }

    #[test]
    fn check_command_runs_small() {
        run(&cli(&[
            "check",
            "--n",
            "80",
            "--radius",
            "0.12",
            "--aov-deg",
            "120",
        ]))
        .unwrap();
    }

    #[test]
    fn check_command_accepts_threads() {
        run(&cli(&[
            "check",
            "--n",
            "80",
            "--radius",
            "0.12",
            "--threads",
            "2",
        ]))
        .unwrap();
        run(&cli(&[
            "failures",
            "--n",
            "60",
            "--p",
            "0.5",
            "--radius",
            "0.12",
            "--threads",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn poisson_command_runs_small() {
        run(&cli(&["poisson", "--density", "60", "--radius", "0.12"])).unwrap();
    }

    #[test]
    fn map_command_runs_small() {
        run(&cli(&["map", "--n", "60", "--side", "12"])).unwrap();
    }

    #[test]
    fn holes_command_runs_small() {
        run(&cli(&["holes", "--n", "60", "--grid", "8"])).unwrap();
    }

    #[test]
    fn hier_flag_runs_map_holes_check() {
        run(&cli(&["map", "--n", "60", "--side", "12", "--hier"])).unwrap();
        run(&cli(&["holes", "--n", "60", "--grid", "8", "--hier"])).unwrap();
        run(&cli(&["check", "--n", "60", "--radius", "0.12", "--hier"])).unwrap();
    }

    #[test]
    fn barrier_command_runs_small() {
        run(&cli(&["barrier", "--n", "60", "--grid", "8"])).unwrap();
    }

    #[test]
    fn barrier_command_queries_a_live_daemon() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, 2.0).unwrap());
        let mut config = ServiceConfig::new(profile);
        config.n = 40;
        let server = Server::start(config).expect("start daemon");
        let addr = server.local_addr().to_string();
        run(&cli(&[
            "barrier",
            "--addr",
            &addr,
            "--grid",
            "8",
            "--theta-deg",
            "60",
        ]))
        .unwrap();
        // Misspelled options keep the did-you-mean policy.
        let err = run(&cli(&["barrier", "--gird", "8"])).unwrap_err();
        assert!(err.to_string().contains("did you mean --grid?"), "{err}");
    }

    #[test]
    fn point_command_runs_small() {
        run(&cli(&["point", "--n", "60", "--x", "0.3", "--y", "0.7"])).unwrap();
    }

    #[test]
    fn aim_command_runs_small() {
        run(&cli(&[
            "aim",
            "--n",
            "25",
            "--radius",
            "0.2",
            "--grid",
            "8",
            "--candidates",
            "6",
            "--rounds",
            "1",
        ]))
        .unwrap();
    }

    #[test]
    fn plan_command_runs_small() {
        run(&cli(&[
            "plan",
            "--radius",
            "0.3",
            "--aov-deg",
            "180",
            "--grid",
            "6",
            "--budget",
            "40",
        ]))
        .unwrap();
    }

    #[test]
    fn route_command_runs_small() {
        run(&cli(&[
            "route",
            "--n",
            "60",
            "--route",
            "0.1,0.1:0.9,0.9",
            "--step",
            "0.05",
        ]))
        .unwrap();
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("fvc-test-net.txt");
        let path = dir.to_string_lossy().to_string();
        run(&cli(&[
            "save", "--out", &path, "--n", "40", "--radius", "0.12",
        ]))
        .unwrap();
        run(&cli(&["holes", "--load", &path, "--grid", "6"])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failures_command_runs_small() {
        run(&cli(&[
            "failures", "--n", "60", "--p", "0.5", "--radius", "0.12",
        ]))
        .unwrap();
    }

    #[test]
    fn save_requires_out() {
        assert!(run(&cli(&["save", "--n", "5"])).is_err());
    }

    #[test]
    fn bad_route_is_error() {
        assert!(run(&cli(&["route", "--n", "10", "--route", "0.5"])).is_err());
        assert!(run(&cli(&["route", "--n", "10", "--route", "nope,0:0.2,0.3"])).is_err());
    }

    #[test]
    fn heterogeneous_profile_file_supported() {
        let dir = std::env::temp_dir().join("fvc-test-profile.txt");
        std::fs::write(&dir, "0.7 0.1 1.5708\n0.3 0.18 0.5236\n").unwrap();
        let path = dir.to_string_lossy().to_string();
        run(&cli(&["check", "--n", "80", "--profile", &path])).unwrap();
        run(&cli(&["csa", "--n", "500"])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn size_command_runs() {
        run(&cli(&[
            "size",
            "--radius",
            "0.15",
            "--aov-deg",
            "120",
            "--n",
            "300",
        ]))
        .unwrap();
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&cli(&["bogus"])).is_err());
    }

    #[test]
    fn misspelled_flag_is_rejected_with_hint() {
        let err = run(&cli(&["check", "--n", "10", "--thread", "2"])).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("unknown option --thread"), "{message}");
        assert!(message.contains("did you mean --threads?"), "{message}");
        // The same policy covers bare flags.
        assert!(run(&cli(&["map", "--n", "10", "--cvs"])).is_err());
    }

    #[test]
    fn serve_config_maps_options() {
        let config = serve_config(&cli(&[
            "serve",
            "--addr",
            "0.0.0.0:0",
            "--n",
            "55",
            "--seed",
            "9",
            "--workers",
            "3",
            "--queue",
            "7",
            "--cache",
            "5",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:0");
        assert_eq!((config.n, config.seed), (55, 9));
        assert_eq!((config.workers, config.queue_capacity), (3, 7));
        assert_eq!((config.cache_capacity, config.eval_threads), (5, 2));
        assert!(config.preloaded.is_none());
    }

    #[test]
    fn serve_config_loads_a_saved_network() {
        let path = std::env::temp_dir().join("fvc-test-serve-net.txt");
        let path = path.to_string_lossy().to_string();
        run(&cli(&[
            "save", "--out", &path, "--n", "30", "--radius", "0.12",
        ]))
        .unwrap();
        let config = serve_config(&cli(&["serve", "--load", &path])).unwrap();
        assert_eq!(config.preloaded.as_ref().map(CameraNetwork::len), Some(30));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_round_trips_against_a_live_daemon() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, 2.0).unwrap());
        let mut config = ServiceConfig::new(profile);
        config.n = 40;
        let server = Server::start(config).expect("start daemon");
        let addr = server.local_addr().to_string();
        run(&cli(&["query", "--addr", &addr, "--req", "ping"])).unwrap();
        run(&cli(&["query", "--addr", &addr, "--req", "map side=8"])).unwrap();
        // A server-side rejection surfaces as a CLI error.
        let err = run(&cli(&["query", "--addr", &addr, "--req", "map sidr=8"])).unwrap_err();
        assert!(err.to_string().contains("unknown parameter"), "{err}");
    }

    #[test]
    fn query_requires_req() {
        assert!(run(&cli(&["query", "--addr", "127.0.0.1:1"])).is_err());
    }

    #[test]
    fn query_pipelines_repeated_reqs_over_one_connection() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, 2.0).unwrap());
        let mut config = ServiceConfig::new(profile);
        config.n = 40;
        let server = Server::start(config).expect("start daemon");
        let addr = server.local_addr().to_string();
        run(&cli(&[
            "query",
            "--addr",
            &addr,
            "--req",
            "ping",
            "--req",
            "map side=8",
            "--req",
            "stats",
        ]))
        .unwrap();
        // A mid-batch rejection names the failing request and the rest
        // still complete.
        let err = run(&cli(&[
            "query",
            "--addr",
            &addr,
            "--req",
            "ping",
            "--req",
            "map sidr=8",
        ]))
        .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("rejected 1 of 2"), "{message}");
        assert!(message.contains("unknown parameter"), "{message}");
        assert!(run(&cli(&[
            "query", "--addr", &addr, "--req", "ping", "--window", "0"
        ]))
        .is_err());
    }

    #[test]
    fn cluster_config_maps_options() {
        let config = cluster_config(&cli(&[
            "cluster",
            "serve",
            "--addr",
            "0.0.0.0:0",
            "--shards",
            "127.0.0.1:7411, 127.0.0.1:7413",
            "--chunks",
            "6",
            "--inflight",
            "2",
            "--retries",
            "5",
            "--backoff-ms",
            "10",
            "--backoff-cap-ms",
            "100",
            "--snapshot-dir",
            "/tmp/fvc-snap",
        ]))
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:0");
        assert_eq!(config.shard_addrs, ["127.0.0.1:7411", "127.0.0.1:7413"]);
        assert_eq!((config.chunks, config.max_inflight), (6, 2));
        assert_eq!((config.retries, config.backoff_ms), (5, 10));
        assert_eq!(config.backoff_cap_ms, 100);
        assert_eq!(
            config.snapshot_dir.as_deref(),
            Some(std::path::Path::new("/tmp/fvc-snap"))
        );
    }

    #[test]
    fn cluster_serve_requires_shards() {
        let err = run(&cli(&["cluster", "serve"])).unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
    }

    #[test]
    fn cluster_actions_are_validated_with_hints() {
        let err = run(&cli(&["cluster"])).unwrap_err();
        assert!(err.to_string().contains("serve or status"), "{err}");
        let err = run(&cli(&["cluster", "bogus"])).unwrap_err();
        assert!(err.to_string().contains("unknown cluster action"), "{err}");
        let err = run(&cli(&["cluster", "serve", "--shrads", "a"])).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("for 'cluster serve'"), "{message}");
        assert!(message.contains("did you mean --shards?"), "{message}");
        let err = run(&cli(&["cluster", "status", "--adr", "a"])).unwrap_err();
        assert!(err.to_string().contains("did you mean --addr?"), "{err}");
    }

    #[test]
    fn cluster_status_reads_a_live_coordinator() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, 2.0).unwrap());
        let mut config = ServiceConfig::new(profile);
        config.n = 30;
        let shard = Server::start(config).expect("start daemon");
        let coordinator =
            Coordinator::start(ClusterConfig::new(vec![shard.local_addr().to_string()]))
                .expect("start coordinator");
        let addr = coordinator.local_addr().to_string();
        run(&cli(&["cluster", "status", "--addr", &addr])).unwrap();
        // The coordinator speaks the daemon protocol: plain query works.
        run(&cli(&["query", "--addr", &addr, "--req", "map side=8"])).unwrap();
    }

    #[test]
    fn serve_config_maps_admission_options() {
        let config =
            serve_config(&cli(&["serve", "--admit-rate", "25", "--admit-burst", "4"])).unwrap();
        assert!((config.admit_rate - 25.0).abs() < 1e-12);
        assert!((config.admit_burst - 4.0).abs() < 1e-12);
        // Admission defaults to off.
        let config = serve_config(&cli(&["serve"])).unwrap();
        assert!(config.admit_rate.abs() < 1e-12);
    }

    #[test]
    fn serve_config_maps_hier_and_max_cells() {
        let config = serve_config(&cli(&["serve", "--hier", "--max-cells", "4096"])).unwrap();
        assert!(config.hier);
        assert_eq!(config.max_cells, 4096);
        // Both default to off.
        let config = serve_config(&cli(&["serve"])).unwrap();
        assert!(!config.hier);
        assert_eq!(config.max_cells, 0);
    }

    #[test]
    fn cluster_config_maps_max_cells() {
        let config = cluster_config(&cli(&[
            "cluster",
            "serve",
            "--shards",
            "a,b",
            "--max-cells",
            "1024",
        ]))
        .unwrap();
        assert_eq!(config.max_cells, 1024);
        let config = cluster_config(&cli(&["cluster", "serve", "--shards", "a,b"])).unwrap();
        assert_eq!(config.max_cells, 0);
    }

    #[test]
    fn serve_config_maps_wal_path() {
        let config = serve_config(&cli(&["serve", "--wal", "/tmp/fvc.snap"])).unwrap();
        assert_eq!(
            config.wal.as_deref(),
            Some(std::path::Path::new("/tmp/fvc.snap"))
        );
        // Persistence defaults to off.
        let config = serve_config(&cli(&["serve"])).unwrap();
        assert!(config.wal.is_none());
    }

    #[test]
    fn cluster_config_maps_breaker_threshold() {
        let config = cluster_config(&cli(&[
            "cluster",
            "serve",
            "--shards",
            "a,b",
            "--breaker-threshold",
            "5",
        ]))
        .unwrap();
        assert_eq!(config.breaker_threshold, 5);
        let config = cluster_config(&cli(&["cluster", "serve", "--shards", "a,b"])).unwrap();
        assert_eq!(config.breaker_threshold, 3);
    }

    #[test]
    fn query_deadline_decorates_query_verbs_only() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, 2.0).unwrap());
        let mut config = ServiceConfig::new(profile);
        config.n = 40;
        let server = Server::start(config).expect("start daemon");
        let addr = server.local_addr().to_string();
        // A generous budget decorates map/check but not ping/stats — the
        // daemon would reject deadline_ms on the latter, so success here
        // proves the decoration is selective.
        run(&cli(&[
            "query",
            "--addr",
            &addr,
            "--deadline-ms",
            "60000",
            "--req",
            "ping",
            "--req",
            "map side=8",
            "--req",
            "check",
            "--req",
            "stats",
        ]))
        .unwrap();
    }

    #[test]
    fn cluster_config_maps_replicas() {
        let config = cluster_config(&cli(&[
            "cluster",
            "serve",
            "--shards",
            "a,b,c,d",
            "--replicas",
            "2",
        ]))
        .unwrap();
        assert_eq!(config.replication, 2);
        let config = cluster_config(&cli(&["cluster", "serve", "--shards", "a,b"])).unwrap();
        assert_eq!(config.replication, 1);
    }

    #[test]
    fn load_config_maps_options() {
        let config = load_config(&cli(&[
            "bench",
            "load",
            "--addr",
            "127.0.0.1:9",
            "--clients",
            "6",
            "--rate",
            "350",
            "--duration-ms",
            "750",
            "--mix",
            "ping=3,check",
        ]))
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:9");
        assert_eq!(config.clients, 6);
        assert!((config.rate - 350.0).abs() < 1e-12);
        assert_eq!(config.duration, std::time::Duration::from_millis(750));
        let names: Vec<&str> = config.mix.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["ping", "check"]);
        // A bad mix is rejected at parse time, not mid-run.
        let err = load_config(&cli(&["bench", "load", "--mix", "nosuch"])).unwrap_err();
        assert!(err.to_string().contains("unknown mix verb"), "{err}");
    }

    #[test]
    fn bench_actions_are_validated_with_hints() {
        let err = run(&cli(&["bench"])).unwrap_err();
        assert!(err.to_string().contains("bench needs an action"), "{err}");
        let err = run(&cli(&["bench", "bogus"])).unwrap_err();
        assert!(err.to_string().contains("unknown bench action"), "{err}");
        let err = run(&cli(&["bench", "load", "--clinets", "4"])).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("for 'bench load'"), "{message}");
        assert!(message.contains("did you mean --clients?"), "{message}");
    }

    #[test]
    fn bench_load_runs_against_a_live_daemon_and_records_the_entry() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, 2.0).unwrap());
        let mut config = ServiceConfig::new(profile);
        config.n = 40;
        let server = Server::start(config).expect("start daemon");
        let addr = server.local_addr().to_string();
        let out = std::env::temp_dir().join(format!("fvc-cli-load-{}.json", std::process::id()));
        let out_str = out.to_string_lossy().to_string();
        run(&cli(&[
            "bench",
            "load",
            "--addr",
            &addr,
            "--clients",
            "2",
            "--rate",
            "60",
            "--duration-ms",
            "300",
            "--mix",
            "ping",
            "--out",
            &out_str,
            "--id",
            "cli_smoke",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).expect("entry file written");
        assert!(text.contains("\"id\": \"cli_smoke\""), "{text}");
        assert!(text.contains("\"p99_ns\""), "{text}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn no_subcommand_prints_usage() {
        run(&cli(&[])).unwrap();
    }
}
