//! `fvc` — command-line full-view coverage analysis.
//!
//! See [`commands::USAGE`] or run `fvc` with no arguments.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let cli = match args::Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
