//! Minimal `--key value` argument parsing for `fvc`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: a subcommand plus `--key value` options and
/// bare `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    subcommand: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Cli {
    /// Parses an iterator of raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for stray positional arguments after the
    /// subcommand.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cli = Cli::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                cli.subcommand = iter.next();
            }
        }
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument '{arg}'")));
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    cli.options.insert(name.to_string(), value);
                }
                _ => cli.flags.push(name.to_string()),
            }
        }
        Ok(cli)
    }

    /// The subcommand, if given.
    #[must_use]
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// Whether a bare flag is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A typed option with default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value is present but unparseable.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgError(format!("bad value for --{name}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_options_flags() {
        let cli = Cli::parse(["csa", "--n", "500", "--verbose", "--theta-deg", "30"]).unwrap();
        assert_eq!(cli.subcommand(), Some("csa"));
        assert_eq!(cli.get("n", 0usize).unwrap(), 500);
        assert!((cli.get("theta-deg", 0.0f64).unwrap() - 30.0).abs() < 1e-12);
        assert!(cli.flag("verbose"));
        assert!(!cli.flag("quiet"));
    }

    #[test]
    fn no_subcommand() {
        let cli = Cli::parse(["--n", "5"]).unwrap();
        assert_eq!(cli.subcommand(), None);
        assert_eq!(cli.get("n", 0usize).unwrap(), 5);
    }

    #[test]
    fn defaults_apply() {
        let cli = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cli.get("n", 7usize).unwrap(), 7);
    }

    #[test]
    fn bad_value_is_error() {
        let cli = Cli::parse(["csa", "--n", "abc"]).unwrap();
        assert!(cli.get("n", 0usize).is_err());
    }

    #[test]
    fn stray_positional_is_error() {
        assert!(Cli::parse(["csa", "oops"]).is_err());
    }

    #[test]
    fn trailing_flag() {
        let cli = Cli::parse(["map", "--csv"]).unwrap();
        assert!(cli.flag("csv"));
    }
}
