//! Minimal `--key value` argument parsing for `fvc`.

use std::fmt;

/// Subcommands that take a second positional word (an *action*), e.g.
/// `fvc cluster serve`. Every other subcommand keeps rejecting stray
/// positionals.
pub const ACTION_SUBCOMMANDS: &[&str] = &["cluster", "bench"];

/// A parsed command line: a subcommand (plus an action word for
/// [`ACTION_SUBCOMMANDS`]), `--key value` options in the order given
/// (repeats allowed), and bare `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    subcommand: Option<String>,
    action: Option<String>,
    options: Vec<(String, String)>,
    flags: Vec<String>,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Cli {
    /// Parses an iterator of raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for stray positional arguments after the
    /// subcommand.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cli = Cli::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                cli.subcommand = iter.next();
            }
        }
        if let (Some(sub), Some(next)) = (cli.subcommand.as_deref(), iter.peek()) {
            if ACTION_SUBCOMMANDS.contains(&sub) && !next.starts_with("--") {
                cli.action = iter.next();
            }
        }
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument '{arg}'")));
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    cli.options.push((name.to_string(), value));
                }
                _ => cli.flags.push(name.to_string()),
            }
        }
        Ok(cli)
    }

    /// The subcommand, if given.
    #[must_use]
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// The action word after an [`ACTION_SUBCOMMANDS`] subcommand
    /// (e.g. `serve` in `fvc cluster serve`), if given.
    #[must_use]
    pub fn action(&self) -> Option<&str> {
        self.action.as_deref()
    }

    /// Whether a bare flag is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Every `--key value` option name present on the command line.
    pub fn option_names(&self) -> impl Iterator<Item = &str> {
        self.options.iter().map(|(k, _)| k.as_str())
    }

    /// Every value given for a repeatable option, in command-line order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.options
            .iter()
            .filter(move |(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every bare `--flag` name present on the command line.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.iter().map(String::as_str)
    }

    /// Rejects any option or flag outside `allowed`, suggesting the
    /// closest allowed name when the typo is near enough (edit distance
    /// at most 2).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown argument.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.option_names().chain(self.flag_names()) {
            if allowed.contains(&name) {
                continue;
            }
            let context = match (self.subcommand(), self.action()) {
                (Some(s), Some(a)) => format!(" for '{s} {a}'"),
                (Some(s), None) => format!(" for '{s}'"),
                _ => String::new(),
            };
            let hint = did_you_mean(name, allowed)
                .map_or_else(String::new, |c| format!(" (did you mean --{c}?)"));
            return Err(ArgError(format!("unknown option --{name}{context}{hint}")));
        }
        Ok(())
    }

    /// A typed option with default. When an option repeats, the last
    /// occurrence wins (repeat-aware commands read them all via
    /// [`get_all`](Self::get_all)).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value is present but unparseable.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.options.iter().rev().find(|(k, _)| k == name) {
            None => Ok(default),
            Some((_, v)) => v
                .parse()
                .map_err(|e| ArgError(format!("bad value for --{name}: {e}"))),
        }
    }
}

/// The closest candidate within edit distance 2 of `input`, if any —
/// the "did you mean" heuristic for misspelled option names.
fn did_you_mean<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    candidates
        .iter()
        .map(|c| (edit_distance(input, c), *c))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

/// Plain Levenshtein distance over chars (option names are short, so the
/// O(len²) two-row DP is plenty).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            curr[j + 1] = substitution.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_options_flags() {
        let cli = Cli::parse(["csa", "--n", "500", "--verbose", "--theta-deg", "30"]).unwrap();
        assert_eq!(cli.subcommand(), Some("csa"));
        assert_eq!(cli.get("n", 0usize).unwrap(), 500);
        assert!((cli.get("theta-deg", 0.0f64).unwrap() - 30.0).abs() < 1e-12);
        assert!(cli.flag("verbose"));
        assert!(!cli.flag("quiet"));
    }

    #[test]
    fn no_subcommand() {
        let cli = Cli::parse(["--n", "5"]).unwrap();
        assert_eq!(cli.subcommand(), None);
        assert_eq!(cli.get("n", 0usize).unwrap(), 5);
    }

    #[test]
    fn defaults_apply() {
        let cli = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cli.get("n", 7usize).unwrap(), 7);
    }

    #[test]
    fn bad_value_is_error() {
        let cli = Cli::parse(["csa", "--n", "abc"]).unwrap();
        assert!(cli.get("n", 0usize).is_err());
    }

    #[test]
    fn stray_positional_is_error() {
        assert!(Cli::parse(["csa", "oops"]).is_err());
    }

    #[test]
    fn action_subcommands_take_one_action_word() {
        let cli = Cli::parse(["cluster", "serve", "--addr", "127.0.0.1:0"]).unwrap();
        assert_eq!(cli.subcommand(), Some("cluster"));
        assert_eq!(cli.action(), Some("serve"));
        assert_eq!(cli.get("addr", String::new()).unwrap(), "127.0.0.1:0");
        // Only one action word: anything after it is still a stray.
        assert!(Cli::parse(["cluster", "serve", "oops"]).is_err());
        // The action is optional (the command reports its own usage).
        let cli = Cli::parse(["cluster"]).unwrap();
        assert_eq!(cli.action(), None);
        // Non-action subcommands never absorb a positional.
        assert!(Cli::parse(["map", "serve"]).is_err());
        // `bench` is the second action subcommand.
        let cli = Cli::parse(["bench", "load", "--rate", "50"]).unwrap();
        assert_eq!(cli.subcommand(), Some("bench"));
        assert_eq!(cli.action(), Some("load"));
        assert_eq!(cli.get("rate", 0.0f64).unwrap(), 50.0);
        assert!(Cli::parse(["bench", "load", "oops"]).is_err());
    }

    #[test]
    fn repeated_options_keep_every_value_and_get_takes_the_last() {
        let cli = Cli::parse([
            "query",
            "--req",
            "ping",
            "--req",
            "map side=8",
            "--addr",
            "a",
        ])
        .unwrap();
        let all: Vec<&str> = cli.get_all("req").collect();
        assert_eq!(all, ["ping", "map side=8"]);
        assert_eq!(cli.get("req", String::new()).unwrap(), "map side=8");
        assert_eq!(cli.get_all("missing").count(), 0);
    }

    #[test]
    fn reject_unknown_names_the_action_context() {
        let cli = Cli::parse(["cluster", "serve", "--shrads", "a,b"]).unwrap();
        let err = cli.reject_unknown(&["addr", "shards"]).unwrap_err();
        assert!(err.0.contains("unknown option --shrads"), "{err}");
        assert!(err.0.contains("for 'cluster serve'"), "{err}");
        assert!(err.0.contains("did you mean --shards?"), "{err}");
    }

    #[test]
    fn trailing_flag() {
        let cli = Cli::parse(["map", "--csv"]).unwrap();
        assert!(cli.flag("csv"));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("side", "side"), 0);
        assert_eq!(edit_distance("sied", "side"), 2); // transposition = 2 edits
        assert_eq!(edit_distance("sid", "side"), 1);
        assert_eq!(edit_distance("", "side"), 4);
        assert_eq!(edit_distance("abc", "yabcx"), 2);
    }

    #[test]
    fn reject_unknown_accepts_known_names() {
        let cli = Cli::parse(["map", "--side", "24", "--csv"]).unwrap();
        assert!(cli.reject_unknown(&["side", "csv"]).is_ok());
    }

    #[test]
    fn reject_unknown_suggests_the_closest_name() {
        // "sied" is 1 edit from "seed" but 2 from "side": the closer
        // candidate wins.
        let cli = Cli::parse(["map", "--sied", "24"]).unwrap();
        let err = cli
            .reject_unknown(&["side", "seed", "theta-deg"])
            .unwrap_err();
        assert!(err.0.contains("unknown option --sied"), "{err}");
        assert!(err.0.contains("for 'map'"), "{err}");
        assert!(err.0.contains("did you mean --seed?"), "{err}");
        let cli = Cli::parse(["map", "--sid", "24"]).unwrap();
        let err = cli.reject_unknown(&["side", "theta-deg"]).unwrap_err();
        assert!(err.0.contains("did you mean --side?"), "{err}");
    }

    #[test]
    fn reject_unknown_without_hint_when_nothing_is_close() {
        let cli = Cli::parse(["map", "--zzzzzz", "1"]).unwrap();
        let err = cli.reject_unknown(&["side", "seed"]).unwrap_err();
        assert!(err.0.contains("unknown option --zzzzzz"), "{err}");
        assert!(!err.0.contains("did you mean"), "{err}");
    }

    #[test]
    fn reject_unknown_covers_bare_flags_too() {
        let cli = Cli::parse(["point", "--verbos"]).unwrap();
        let err = cli.reject_unknown(&["verbose", "x", "y"]).unwrap_err();
        assert!(err.0.contains("did you mean --verbose?"), "{err}");
    }
}
