//! Kill-9 crash-recovery e2e: a daemon serving with `--wal` is killed
//! without warning (SIGKILL — no drop handlers, no flush beyond the
//! per-record fsync) and a restarted daemon must come back with the
//! byte-identical fleet: every *acknowledged* mutation survives the
//! crash, proven by fingerprint equality and a byte-identical map.
//!
//! Runs the real `fvc` binary so the whole path is exercised: CLI flag
//! parsing, daemon startup recovery (snapshot + journal replay), and the
//! fsync-before-ack discipline of the journal itself.

use fullview_service::Client;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Spawns `fvc serve` on an ephemeral port with a WAL and returns the
/// child plus the address parsed from its startup banner.
fn spawn_daemon(base: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fvc"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--n",
            "60",
            "--seed",
            "7",
            "--wal",
        ])
        .arg(base)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fvc serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon printed a banner")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();
    assert!(banner.contains("listening"), "unexpected banner: {banner}");
    // Keep draining stdout in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    client
}

#[test]
fn sigkill_and_restart_recovers_every_acknowledged_mutation() {
    let dir = std::env::temp_dir().join(format!("fvc-crash-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let base = dir.join("fleet.snap");

    // First life: mutate the fleet, record the fingerprint and a map
    // after every acknowledged mutation, then SIGKILL mid-flight.
    let (mut child, addr) = spawn_daemon(&base);
    let mut client = connect(&addr);
    client.request_ok("fail id=3").expect("fail");
    client.request_ok("move id=5 x=0.25 y=0.75").expect("move");
    client.request_ok("reseed seed=11 n=50").expect("reseed");
    client.request_ok("fail id=1").expect("fail 2");
    let fp = client.request_ok("fingerprint").expect("fingerprint");
    let map = client.request_ok("map side=16").expect("map");
    // Child::kill is SIGKILL: no shutdown path runs, the journal is
    // whatever the per-mutation fsyncs made durable.
    child.kill().expect("sigkill");
    child.wait().expect("reap");
    drop(client);

    // Second life: recovery must reproduce the acknowledged state bit
    // for bit — same fingerprint, byte-identical map.
    let (mut child, addr) = spawn_daemon(&base);
    let mut client = connect(&addr);
    assert_eq!(
        client.request_ok("fingerprint").expect("fingerprint"),
        fp,
        "acknowledged mutations must survive SIGKILL"
    );
    assert_eq!(
        client.request_ok("map side=16").expect("map"),
        map,
        "recovered fleet must answer byte-identically"
    );

    // The recovered daemon is fully live: it journals new mutations and
    // survives a second crash the same way.
    client.request_ok("move id=2 x=0.5 y=0.5").expect("move");
    let fp2 = client.request_ok("fingerprint").expect("fingerprint");
    assert_ne!(fp2, fp, "the new mutation changed the fleet");
    child.kill().expect("second sigkill");
    child.wait().expect("reap");
    drop(client);

    let (mut child, addr) = spawn_daemon(&base);
    let mut client = connect(&addr);
    assert_eq!(client.request_ok("fingerprint").expect("fingerprint"), fp2);
    // Graceful path still works after all that abuse.
    client.request_ok("shutdown").expect("shutdown");
    drop(client);
    child.wait().expect("graceful exit");

    let _ = std::fs::remove_dir_all(&dir);
}
