//! Plain-text result tables for experiment binaries.

use std::fmt;

/// A simple right-padded text table: a header row plus data rows, rendered
/// with aligned columns — the "rows the paper reports" output format of
/// every experiment binary.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as CSV (comma-separated, quoted only when
    /// needed).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |out: &mut String, row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 6 significant digits — the house style for
/// experiment output.
#[must_use]
pub fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let magnitude = x.abs().log10().floor() as i32;
    if (-3..6).contains(&magnitude) {
        let decimals = (5 - magnitude).max(0) as usize;
        format!("{x:.decimals$}")
    } else {
        format!("{x:.4e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "value"]);
        t.push_row(["100", "1.5"]);
        t.push_row(["100000", "2.25"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("value"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned: both data lines have equal length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_round_trip_basics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "x,y"]);
        t.push_row(["2", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn fmt_g_ranges() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(1.0), "1.00000");
        assert_eq!(fmt_g(0.012345678), "0.0123457");
        assert!(fmt_g(1.23e-7).contains('e'));
        assert!(fmt_g(1.23e9).contains('e'));
        assert_eq!(fmt_g(123.456), "123.456");
    }

    #[test]
    fn row_count() {
        let mut t = Table::new(["x"]);
        assert_eq!(t.row_count(), 0);
        t.push_row(["1"]);
        assert_eq!(t.row_count(), 1);
    }
}
