//! Random sensor failure injection.
//!
//! §VII-B motivates k-coverage by fault tolerance ("sensors often fail due
//! to unexpected events"); the `failures` experiment measures how
//! full-view coverage — which implies `⌈π/θ⌉`-coverage — degrades as each
//! camera independently fails with probability `p`.

use fullview_model::CameraNetwork;
use rand::Rng;

/// Returns a copy of `net` in which each camera has independently failed
/// (been removed) with probability `failure_probability`.
///
/// # Panics
///
/// Panics if `failure_probability ∉ [0, 1]`.
#[must_use]
pub fn with_random_failures<R: Rng + ?Sized>(
    net: &CameraNetwork,
    failure_probability: f64,
    rng: &mut R,
) -> CameraNetwork {
    assert!(
        (0.0..=1.0).contains(&failure_probability),
        "failure probability must lie in [0, 1], got {failure_probability}"
    );
    net.filter(|_| rng.gen_range(0.0..1.0) >= failure_probability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Point, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn network(n: usize) -> CameraNetwork {
        let spec = SensorSpec::new(0.1, PI).unwrap();
        let cams: Vec<Camera> = (0..n)
            .map(|i| {
                Camera::new(
                    Point::new((i as f64 * 0.618) % 1.0, (i as f64 * 0.414) % 1.0),
                    Angle::new(i as f64),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(Torus::unit(), cams)
    }

    #[test]
    fn zero_probability_keeps_everything() {
        let net = network(50);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(with_random_failures(&net, 0.0, &mut rng).len(), 50);
    }

    #[test]
    fn one_probability_removes_everything() {
        let net = network(50);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(with_random_failures(&net, 1.0, &mut rng).len(), 0);
    }

    #[test]
    fn survival_rate_close_to_expectation() {
        let net = network(400);
        let mut rng = StdRng::seed_from_u64(2);
        let mut survivors = 0usize;
        let reps = 20;
        for _ in 0..reps {
            survivors += with_random_failures(&net, 0.3, &mut rng).len();
        }
        let rate = survivors as f64 / (400.0 * reps as f64);
        assert!((rate - 0.7).abs() < 0.03, "survival rate {rate}");
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn invalid_probability_panics() {
        let net = network(1);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = with_random_failures(&net, 1.5, &mut rng);
    }
}
