//! Parallel Monte-Carlo trial execution with deterministic seeding.
//!
//! Every trial gets an independent seed derived from `(master_seed,
//! trial_index)` (see [`fullview_deploy::derive_seed`]), so results are
//! identical regardless of thread count or scheduling, and any single
//! trial can be re-run in isolation for debugging.

use crate::estimate::{MeanEstimate, ProportionEstimate};
use fullview_deploy::derive_seed;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed; trial `i` runs with `derive_seed(master_seed, i)`.
    pub master_seed: u64,
    /// Worker threads (`0` = one per available CPU).
    pub threads: usize,
}

impl RunConfig {
    /// A run with the given trial count, seed 0, and automatic threading.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        RunConfig {
            trials,
            master_seed: 0,
            threads: 0,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Sets an explicit thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_threads(&self) -> usize {
        let n = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        };
        n.max(1).min(self.trials.max(1))
    }
}

/// Runs `f(seed)` for every trial in parallel, collecting the results in
/// trial order.
///
/// `f` must be deterministic in its seed for reproducibility. Work is
/// distributed dynamically (atomic counter), so uneven trial costs still
/// balance across threads.
///
/// # Panics
///
/// Propagates panics from `f` (the first panicking worker aborts the
/// run).
pub fn run_trials_map<T, F>(config: RunConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let trials = config.trials;
    if trials == 0 {
        return Vec::new();
    }
    let threads = config.effective_threads();
    if threads == 1 {
        return (0..trials)
            .map(|i| f(derive_seed(config.master_seed, i as u64)))
            .collect();
    }
    // Dynamic work distribution: each worker claims trial indices from an
    // atomic counter and records (index, result) pairs; results are then
    // merged back into trial order. Uneven trial costs balance naturally.
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trials {
                            break out;
                        }
                        out.push((i, f(derive_seed(config.master_seed, i as u64))));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(trials);
    for chunk in per_worker.drain(..) {
        indexed.extend(chunk);
    }
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), trials);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Runs a boolean Monte-Carlo experiment and returns the success
/// proportion.
///
/// # Examples
///
/// ```
/// use fullview_sim::{run_proportion, RunConfig};
///
/// // Estimate P(coin lands on an even seed) — trivially deterministic.
/// let est = run_proportion(RunConfig::new(1000).with_seed(7), |seed| seed % 2 == 0);
/// assert_eq!(est.trials(), 1000);
/// assert!((est.mean() - 0.5).abs() < 0.1);
/// ```
pub fn run_proportion<F>(config: RunConfig, f: F) -> ProportionEstimate
where
    F: Fn(u64) -> bool + Sync,
{
    let outcomes = run_trials_map(config, f);
    let successes = outcomes.iter().filter(|b| **b).count();
    ProportionEstimate::new(successes, outcomes.len())
}

/// Runs a real-valued Monte-Carlo experiment and returns the sample mean
/// estimate.
pub fn run_mean<F>(config: RunConfig, f: F) -> MeanEstimate
where
    F: Fn(u64) -> f64 + Sync,
{
    MeanEstimate::from_samples(run_trials_map(config, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_trials() {
        let v = run_trials_map(RunConfig::new(0), |s| s);
        assert!(v.is_empty());
        let p = run_proportion(RunConfig::new(0), |_| true);
        assert_eq!(p.trials(), 0);
    }

    #[test]
    fn results_in_trial_order_and_deterministic() {
        let cfg = RunConfig::new(500).with_seed(42);
        let a = run_trials_map(cfg, |s| s);
        let b = run_trials_map(cfg.with_threads(3), |s| s);
        let c = run_trials_map(cfg.with_threads(1), |s| s);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Seeds are the derived sequence.
        for (i, s) in a.iter().enumerate() {
            assert_eq!(*s, fullview_deploy::derive_seed(42, i as u64));
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        // `with_threads(0)` means "one per CPU" and must never resolve to
        // zero workers, even when the platform query fails.
        let cfg = RunConfig::new(100).with_seed(3).with_threads(0);
        assert!(cfg.effective_threads() >= 1);
        let auto = run_trials_map(cfg, |s| s);
        let one = run_trials_map(cfg.with_threads(1), |s| s);
        assert_eq!(auto, one, "thread count must not change results");
        assert_eq!(auto.len(), 100);
        // The clamp also caps at the trial count.
        assert_eq!(RunConfig::new(2).with_threads(64).effective_threads(), 2);
        assert_eq!(RunConfig::new(0).with_threads(0).effective_threads(), 1);
    }

    #[test]
    fn all_seeds_distinct() {
        let v = run_trials_map(RunConfig::new(1000), |s| s);
        let set: HashSet<u64> = v.into_iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn every_trial_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let _ = run_trials_map(RunConfig::new(257).with_threads(4), |s| {
            counter.fetch_add(1, Ordering::Relaxed);
            s
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn proportion_counts_successes() {
        // Success iff derived seed is below the median — roughly half.
        let p = run_proportion(RunConfig::new(2000).with_seed(9), |s| s < u64::MAX / 2);
        assert!((p.mean() - 0.5).abs() < 0.05, "{p}");
    }

    #[test]
    fn mean_runs() {
        let m = run_mean(RunConfig::new(100).with_seed(1), |s| (s % 10) as f64);
        assert!(m.count() == 100);
        assert!((m.mean() - 4.5).abs() < 1.5);
    }

    #[test]
    fn different_master_seeds_give_different_streams() {
        let a = run_trials_map(RunConfig::new(10).with_seed(1), |s| s);
        let b = run_trials_map(RunConfig::new(10).with_seed(2), |s| s);
        assert_ne!(a, b);
    }
}
