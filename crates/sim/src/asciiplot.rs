//! ASCII line plots — the "figures" of the reproduction.
//!
//! The paper's Figures 7 and 8 are line charts; without a plotting stack
//! we render the same series as terminal scatter/line plots so the shape
//! (monotonicity, crossovers, saturation) is visible directly in the
//! experiment output. CSV output accompanies every plot for external
//! re-plotting.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; the first character is the plot marker.
    pub label: String,
    /// Data points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Configuration for an ASCII plot.
#[derive(Debug, Clone, Copy)]
pub struct PlotConfig {
    /// Plot width in character cells.
    pub width: usize,
    /// Plot height in character cells.
    pub height: usize,
    /// Map x through log10 before plotting.
    pub log_x: bool,
    /// Map y through log10 before plotting.
    pub log_y: bool,
}

impl Default for PlotConfig {
    fn default() -> Self {
        PlotConfig {
            width: 72,
            height: 20,
            log_x: false,
            log_y: false,
        }
    }
}

/// Renders `series` as an ASCII plot with axes and a legend.
///
/// Points with non-finite (or, on log axes, non-positive) coordinates are
/// skipped. Returns a note string when nothing is plottable.
#[must_use]
pub fn render(series: &[Series], config: PlotConfig) -> String {
    let tx = |x: f64| if config.log_x { x.log10() } else { x };
    let ty = |y: f64| if config.log_y { y.log10() } else { y };
    let ok = |v: f64, log: bool| v.is_finite() && (!log || v > 0.0);

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            if ok(x, config.log_x) && ok(y, config.log_y) {
                xs.push(tx(x));
                ys.push(ty(y));
            }
        }
    }
    if xs.is_empty() {
        return "(no plottable points)\n".to_string();
    }
    let (xmin, xmax) = min_max(&xs);
    let (ymin, ymax) = min_max(&ys);
    let xspan = if xmax > xmin { xmax - xmin } else { 1.0 };
    let yspan = if ymax > ymin { ymax - ymin } else { 1.0 };

    let w = config.width.max(8);
    let h = config.height.max(4);
    let mut grid = vec![vec![' '; w]; h];

    for s in series {
        let marker = s.label.chars().next().unwrap_or('*');
        for &(x, y) in &s.points {
            if !(ok(x, config.log_x) && ok(y, config.log_y)) {
                continue;
            }
            let cx = (((tx(x) - xmin) / xspan) * (w - 1) as f64).round() as usize;
            let cy = (((ty(y) - ymin) / yspan) * (h - 1) as f64).round() as usize;
            let row = h - 1 - cy.min(h - 1);
            grid[row][cx.min(w - 1)] = marker;
        }
    }

    let mut out = String::new();
    let fmt_axis = |v: f64, log: bool| -> String {
        let raw = if log { 10f64.powf(v) } else { v };
        format!("{raw:.4}")
    };
    let _ = writeln!(out, "  y_max = {}", fmt_axis(ymax, config.log_y));
    for row in &grid {
        let _ = writeln!(out, "  |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "  +{}", "-".repeat(w));
    let _ = writeln!(
        out,
        "  y_min = {}   x: [{} .. {}]{}",
        fmt_axis(ymin, config.log_y),
        fmt_axis(xmin, config.log_x),
        fmt_axis(xmax, config.log_x),
        if config.log_x { " (log)" } else { "" }
    );
    for s in series {
        let _ = writeln!(
            out,
            "  {} = {}",
            s.label.chars().next().unwrap_or('*'),
            s.label
        );
    }
    out
}

fn min_max(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_legend() {
        let s = vec![
            Series::new("necessary", vec![(1.0, 1.0), (2.0, 2.0)]),
            Series::new("sufficient", vec![(1.0, 2.0), (2.0, 4.0)]),
        ];
        let out = render(&s, PlotConfig::default());
        assert!(out.contains('n'));
        assert!(out.contains('s'));
        assert!(out.contains("n = necessary"));
        assert!(out.contains("y_max"));
    }

    #[test]
    fn empty_series_handled() {
        let out = render(&[], PlotConfig::default());
        assert!(out.contains("no plottable"));
        let out = render(
            &[Series::new("x", vec![(f64::NAN, 1.0)])],
            PlotConfig::default(),
        );
        assert!(out.contains("no plottable"));
    }

    #[test]
    fn log_axes_skip_nonpositive() {
        let s = vec![Series::new(
            "a",
            vec![(0.0, 1.0), (10.0, 1.0), (100.0, 2.0)],
        )];
        let out = render(
            &s,
            PlotConfig {
                log_x: true,
                ..PlotConfig::default()
            },
        );
        assert!(out.contains("(log)"));
        assert!(out.contains("10.0000"));
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let s = vec![Series::new("p", vec![(1.0, 1.0)])];
        let out = render(&s, PlotConfig::default());
        assert!(out.contains('p'));
    }

    #[test]
    fn dimensions_respected() {
        let s = vec![Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)])];
        let cfg = PlotConfig {
            width: 40,
            height: 10,
            ..PlotConfig::default()
        };
        let out = render(&s, cfg);
        let plot_lines = out.lines().filter(|l| l.starts_with("  |")).count();
        assert_eq!(plot_lines, 10);
    }
}
