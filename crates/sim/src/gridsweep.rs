//! Intra-sweep parallel dense-grid coverage evaluation.
//!
//! The Monte-Carlo runner ([`crate::run_trials_map`]) parallelises *across*
//! trials; this module parallelises *within* one trial: the `m = ⌈n ln n⌉`
//! grid points of a single dense-grid sweep (§III-A) are split into work
//! units that workers claim dynamically, each evaluating with its own
//! [`GridEvaluator`] scratch state (no per-point allocation), and the
//! partial [`GridCoverageReport`]s are merged in work-unit order.
//!
//! Two work-unit shapes exist. When the tiled engine is profitable
//! ([`use_tiled`]) the unit is one *tile* — a spatial-index cell's worth of
//! grid points sharing a pinned candidate list — giving cache-coherent
//! candidate reuse and a finer tail than the flat path's fixed 1024-point
//! chunks. Otherwise [`evaluate_grid_parallel_flat`] splits the flat index
//! range. Every report field is a plain integer sum over disjoint point
//! sets, so merging is exact and order-independent: both parallel sweeps
//! are **bit-identical** to [`evaluate_grid`] (and to each other) for every
//! thread count and chunking.

use fullview_core::{
    dense_grid, evaluate_grid, use_tiled, EffectiveAngle, GridCoverageReport, GridEvaluator,
    GridTiling,
};
use fullview_geom::{Angle, UnitGrid};
use fullview_model::CameraNetwork;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Grid points per dynamically-claimed work unit.
///
/// Large enough that the atomic claim is negligible against the per-point
/// analysis, small enough that uneven camera density still balances
/// (a 10⁴-camera dense grid has ~92k points ≈ 90 chunks).
const CHUNK_POINTS: usize = 1024;

fn effective_threads(threads: usize, chunks: usize) -> usize {
    let n = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    n.max(1).min(chunks.max(1))
}

/// Sweeps `grid` with `threads` workers (`0` = one per available CPU),
/// evaluating every coverage predicate at each point.
///
/// Dispatches to tile-claiming workers when the tiled engine is
/// profitable ([`use_tiled`]) and to [`evaluate_grid_parallel_flat`]
/// otherwise. Produces a report bit-identical to
/// [`evaluate_grid`]`(net, theta, grid, start_line)` for every thread
/// count and either backend: workers tally disjoint point sets and the
/// integer tallies are merged, which is exact regardless of scheduling.
///
/// # Panics
///
/// Propagates panics from worker threads.
#[must_use]
pub fn evaluate_grid_parallel(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid: &UnitGrid,
    start_line: Angle,
    threads: usize,
) -> GridCoverageReport {
    if use_tiled(net, grid) {
        evaluate_grid_parallel_tiled(net, theta, grid, start_line, threads)
    } else {
        evaluate_grid_parallel_flat(net, theta, grid, start_line, threads)
    }
}

/// Tile-claiming parallel sweep: each work unit is one spatial-index cell
/// (pinned candidate list shared by all its grid points), claimed from an
/// atomic counter. Finer tail granularity than the flat 1024-point chunks
/// and better cache locality — candidates are fetched once per tile.
fn evaluate_grid_parallel_tiled(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid: &UnitGrid,
    start_line: Angle,
    threads: usize,
) -> GridCoverageReport {
    let tiling = GridTiling::new(net.index(), grid);
    let tiles = tiling.tile_count();
    let threads = effective_threads(threads, tiles);
    if threads == 1 {
        return evaluate_grid(net, theta, grid, start_line);
    }

    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, GridCoverageReport)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let tiling = &tiling;
                scope.spawn(move || {
                    let mut evaluator = GridEvaluator::new(theta, start_line);
                    let mut cursor = net.tile_cursor();
                    let mut out = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tiles {
                            break out;
                        }
                        // Empty tiles contribute the zero report; skip the
                        // pin entirely (identity under merge).
                        if tiling.tile_point_count(t) == 0 {
                            continue;
                        }
                        out.push((
                            t,
                            evaluator.evaluate_tiles(&mut cursor, tiling, grid, t..t + 1),
                        ));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid sweep worker panicked"))
            .collect()
    });

    // Merge in tile order (empty tiles absent — they are the identity).
    let mut indexed: Vec<(usize, GridCoverageReport)> = Vec::new();
    for worker in per_worker.drain(..) {
        indexed.extend(worker);
    }
    indexed.sort_by_key(|(t, _)| *t);
    let mut report = GridCoverageReport::default();
    for (_, partial) in indexed {
        report += partial;
    }
    report
}

/// Flat-chunk parallel sweep: workers claim fixed 1024-point index ranges.
///
/// This is the legacy execution shape, kept as an explicit backend for
/// differential tests and benchmarks; [`evaluate_grid_parallel`] chooses
/// between it and tile claiming automatically. Bit-identical to the serial
/// and tiled paths for every thread count.
///
/// # Panics
///
/// Propagates panics from worker threads.
#[must_use]
pub fn evaluate_grid_parallel_flat(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid: &UnitGrid,
    start_line: Angle,
    threads: usize,
) -> GridCoverageReport {
    let total = grid.len();
    let chunks = total.div_ceil(CHUNK_POINTS);
    let threads = effective_threads(threads, chunks);
    if threads == 1 {
        // Truly flat serial sweep (no tile dispatch) so the explicit
        // backend stays uniform across thread counts.
        return GridEvaluator::new(theta, start_line).evaluate_range(net, grid, 0..total);
    }

    // Dynamic work distribution (the `run_trials_map` pattern): workers
    // claim chunk indices from an atomic counter, evaluate them with their
    // own scratch state, and record (chunk, partial) pairs.
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, GridCoverageReport)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut evaluator = GridEvaluator::new(theta, start_line);
                    let mut out = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break out;
                        }
                        let lo = c * CHUNK_POINTS;
                        let hi = (lo + CHUNK_POINTS).min(total);
                        out.push((c, evaluator.evaluate_range(net, grid, lo..hi)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid sweep worker panicked"))
            .collect()
    });

    // Merge in chunk order. Integer sums are exact either way; the sort
    // just makes the merge sequence (and any future non-commutative
    // fields) independent of scheduling.
    let mut indexed: Vec<(usize, GridCoverageReport)> = Vec::with_capacity(chunks);
    for chunk in per_worker.drain(..) {
        indexed.extend(chunk);
    }
    indexed.sort_by_key(|(c, _)| *c);
    debug_assert_eq!(indexed.len(), chunks);
    let mut report = GridCoverageReport::default();
    for (_, partial) in indexed {
        report += partial;
    }
    report
}

/// Parallel variant of [`fullview_core::evaluate_dense_grid`]: sweeps the
/// paper's dense grid (`m = ⌈n ln n⌉` with `n = net.len()`) over the
/// network's torus using `threads` workers (`0` = one per available CPU).
#[must_use]
pub fn evaluate_dense_grid_parallel(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    start_line: Angle,
    threads: usize,
) -> GridCoverageReport {
    let grid = dense_grid(*net.torus(), net.len());
    evaluate_grid_parallel(net, theta, &grid, start_line, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_deploy::deploy_uniform;
    use fullview_geom::{Point, Torus};
    use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile, SensorSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    fn random_network(n: usize, seed: u64) -> CameraNetwork {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.18, PI).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        deploy_uniform(Torus::unit(), &profile, n, &mut rng).unwrap()
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_across_threads_and_seeds() {
        let th = theta(PI / 3.0);
        for seed in [1u64, 99, 0xFEED] {
            let net = random_network(120, seed);
            let grid = UnitGrid::new(Torus::unit(), 60); // 3600 points, 4 chunks
            let serial = evaluate_grid(&net, th, &grid, Angle::ZERO);
            for threads in [1usize, 2, 4, 7] {
                let par = evaluate_grid_parallel(&net, th, &grid, Angle::ZERO, threads);
                assert_eq!(par, serial, "threads={threads} seed={seed}");
            }
        }
    }

    #[test]
    fn zero_threads_clamps_to_one_worker_minimum() {
        // `effective_threads` never resolves to zero, whatever mix of
        // zero threads / zero chunks it is handed.
        assert!(effective_threads(0, 16) >= 1);
        assert_eq!(effective_threads(3, 0), 1);
        assert_eq!(effective_threads(0, 0), 1);
        // And threads=0 sweeps run and stay bit-identical to serial.
        let net = random_network(80, 11);
        let grid = UnitGrid::new(Torus::unit(), 48);
        let th = theta(PI / 3.0);
        let serial = evaluate_grid(&net, th, &grid, Angle::ZERO);
        assert_eq!(
            evaluate_grid_parallel(&net, th, &grid, Angle::ZERO, 0),
            serial
        );
        assert_eq!(
            evaluate_grid_parallel_flat(&net, th, &grid, Angle::ZERO, 0),
            serial
        );
    }

    #[test]
    fn auto_thread_count_matches_serial() {
        let net = random_network(60, 7);
        let th = theta(PI / 4.0);
        let serial = fullview_core::evaluate_dense_grid(&net, th, Angle::ZERO);
        let par = evaluate_dense_grid_parallel(&net, th, Angle::ZERO, 0);
        assert_eq!(par, serial);
    }

    #[test]
    fn small_grid_single_chunk_short_circuits() {
        // 25 points < one chunk: must take the serial path and still agree.
        let net = random_network(20, 3);
        let grid = UnitGrid::new(Torus::unit(), 5);
        let th = theta(PI / 2.0);
        let serial = evaluate_grid(&net, th, &grid, Angle::ZERO);
        assert_eq!(
            evaluate_grid_parallel(&net, th, &grid, Angle::ZERO, 8),
            serial
        );
    }

    #[test]
    fn empty_network_parallel_sweep() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 40);
        let th = theta(PI / 2.0);
        let r = evaluate_grid_parallel(&net, th, &grid, Angle::ZERO, 4);
        assert_eq!(r.total_points, 1600);
        assert_eq!(r.covered, 0);
        assert!(!r.all_full_view());
    }

    #[test]
    fn saturated_network_all_full_view_in_parallel() {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.3, 2.0 * PI).unwrap();
        let mut cams = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                cams.push(Camera::new(
                    Point::new(i as f64 / 12.0, j as f64 / 12.0),
                    Angle::ZERO,
                    spec,
                    GroupId(0),
                ));
            }
        }
        let net = CameraNetwork::new(torus, cams);
        let grid = UnitGrid::new(torus, 40);
        let r = evaluate_grid_parallel(&net, theta(PI / 4.0), &grid, Angle::ZERO, 3);
        assert!(r.all_full_view(), "{r}");
        assert_eq!(r.full_view_fraction(), 1.0);
    }
}
