//! Parameter-sweep grids for experiments.

/// `count` evenly spaced values from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `count == 0`, the bounds are not finite, or `lo > hi`.
#[must_use]
pub fn linspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "linspace needs at least one point");
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "bad range [{lo}, {hi}]"
    );
    if count == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (count - 1) as f64;
    (0..count).map(|i| lo + i as f64 * step).collect()
}

/// `count` logarithmically spaced values from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `count == 0` or the bounds are not finite positive with
/// `lo <= hi`.
#[must_use]
pub fn logspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "logspace needs at least one point");
    assert!(
        lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi,
        "bad log range [{lo}, {hi}]"
    );
    linspace(lo.ln(), hi.ln(), count)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Logarithmically spaced *integer* population sizes from `lo` to `hi`
/// inclusive, deduplicated (useful for `n`-sweeps like Fig. 8).
///
/// # Panics
///
/// Panics if `count == 0` or `lo` is zero or exceeds `hi`.
#[must_use]
pub fn logspace_counts(lo: usize, hi: usize, count: usize) -> Vec<usize> {
    assert!(lo > 0 && lo <= hi, "bad count range [{lo}, {hi}]");
    let mut v: Vec<usize> = logspace(lo as f64, hi as f64, count)
        .into_iter()
        .map(|x| x.round() as usize)
        .collect();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[4], 1.0);
        for w in v.windows(2) {
            assert!((w[1] - w[0] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn linspace_single() {
        assert_eq!(linspace(2.0, 3.0, 1), vec![2.0]);
    }

    #[test]
    fn logspace_endpoints_and_ratio() {
        let v = logspace(1.0, 100.0, 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 10.0).abs() < 1e-9);
        assert!((v[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn logspace_counts_monotone_unique() {
        let v = logspace_counts(100, 100_000, 13);
        assert_eq!(*v.first().unwrap(), 100);
        assert_eq!(*v.last().unwrap(), 100_000);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn logspace_counts_collapses_duplicates() {
        let v = logspace_counts(10, 12, 10);
        assert!(v.len() <= 3);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_linspace_panics() {
        let _ = linspace(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "bad log range")]
    fn logspace_rejects_nonpositive() {
        let _ = logspace(0.0, 1.0, 3);
    }
}
