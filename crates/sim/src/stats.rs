//! Hypothesis-testing helpers for experiment analysis.
//!
//! The §VI-A experiment ("decisive role of sensing area") needs to decide
//! whether two coverage proportions are statistically indistinguishable;
//! a two-proportion z-test with a normal-CDF p-value is exactly the right
//! tool and small enough to implement directly.

use crate::estimate::ProportionEstimate;
use std::fmt;

/// Result of a two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoProportionTest {
    /// The z statistic (pooled standard error).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_value: f64,
}

impl TwoProportionTest {
    /// Whether the difference is significant at level `alpha`
    /// (e.g. `0.05`).
    #[must_use]
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

impl fmt::Display for TwoProportionTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z={:.3}, p={:.4}", self.z, self.p_value)
    }
}

/// Two-sided two-proportion z-test for `H₀: p₁ = p₂`.
///
/// Returns `z = 0, p = 1` when either sample is empty or the pooled
/// variance vanishes (both proportions at the same extreme — no evidence
/// of difference).
#[must_use]
pub fn two_proportion_test(a: ProportionEstimate, b: ProportionEstimate) -> TwoProportionTest {
    let (na, nb) = (a.trials() as f64, b.trials() as f64);
    if a.trials() == 0 || b.trials() == 0 {
        return TwoProportionTest {
            z: 0.0,
            p_value: 1.0,
        };
    }
    let pooled = (a.successes() + b.successes()) as f64 / (na + nb);
    let se = (pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb)).sqrt();
    if se == 0.0 {
        return TwoProportionTest {
            z: 0.0,
            p_value: 1.0,
        };
    }
    let z = (a.mean() - b.mean()) / se;
    TwoProportionTest {
        z,
        p_value: 2.0 * (1.0 - standard_normal_cdf(z.abs())),
    }
}

/// The standard normal CDF `Φ(x)`, via the Abramowitz & Stegun 7.1.26
/// polynomial approximation of `erf` (absolute error < 1.5e-7 — ample for
/// p-values).
#[must_use]
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (A&S 7.1.26).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_table_to_1e6() {
        // Reference values from the standard erf table (A&S Table 7.1 /
        // any modern reference implementation, 9 significant digits). The
        // 7.1.26 approximation claims |error| < 1.5e-7; the service's
        // confidence reporting budgets 1e-6.
        let table = [
            (0.0, 0.0),
            (0.1, 0.112_462_916),
            (0.25, 0.276_326_390),
            (0.5, 0.520_499_878),
            (0.75, 0.711_155_634),
            (1.0, 0.842_700_793),
            (1.5, 0.966_105_146),
            (2.0, 0.995_322_265),
            (2.5, 0.999_593_048),
            (3.0, 0.999_977_910),
        ];
        for (x, want) in table {
            assert!(
                (erf(x) - want).abs() <= 1e-6,
                "erf({x}) = {}, want {want}",
                erf(x)
            );
            assert!(
                (erf(-x) + want).abs() <= 1e-6,
                "erf(-{x}) must mirror erf({x})"
            );
        }
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12); // odd by construction
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_matches_reference_table_to_1e6() {
        // Φ(z) table values to 9 significant digits.
        let table = [
            (0.0, 0.5),
            (0.5, 0.691_462_461),
            (1.0, 0.841_344_746),
            (1.5, 0.933_192_799),
            (1.96, 0.975_002_105),
            (2.0, 0.977_249_868),
            (2.576, 0.995_002_467),
            (3.0, 0.998_650_102),
        ];
        for (z, want) in table {
            let got = standard_normal_cdf(z);
            assert!((got - want).abs() <= 1e-6, "Φ({z}) = {got}, want {want}");
            // Symmetry: Φ(-z) = 1 - Φ(z).
            let neg = standard_normal_cdf(-z);
            assert!((neg - (1.0 - want)).abs() <= 1e-6, "Φ(-{z}) = {neg}");
        }
    }

    #[test]
    fn identical_proportions_not_significant() {
        let a = ProportionEstimate::new(500, 1000);
        let b = ProportionEstimate::new(500, 1000);
        let t = two_proportion_test(a, b);
        assert!(t.z.abs() < 1e-12);
        assert!((t.p_value - 1.0).abs() < 1e-6);
        assert!(!t.significant_at(0.05));
    }

    #[test]
    fn clearly_different_proportions_significant() {
        let a = ProportionEstimate::new(900, 1000);
        let b = ProportionEstimate::new(500, 1000);
        let t = two_proportion_test(a, b);
        assert!(t.significant_at(0.001), "{t}");
        assert!(t.z > 10.0);
    }

    #[test]
    fn close_proportions_small_samples_not_significant() {
        let a = ProportionEstimate::new(6, 10);
        let b = ProportionEstimate::new(5, 10);
        let t = two_proportion_test(a, b);
        assert!(!t.significant_at(0.05), "{t}");
    }

    #[test]
    fn degenerate_cases() {
        let empty = ProportionEstimate::new(0, 0);
        let some = ProportionEstimate::new(5, 10);
        assert_eq!(two_proportion_test(empty, some).p_value, 1.0);
        // Both all-success: pooled variance zero.
        let full = ProportionEstimate::new(10, 10);
        assert_eq!(two_proportion_test(full, full).p_value, 1.0);
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = ProportionEstimate::new(70, 100);
        let b = ProportionEstimate::new(50, 100);
        let t1 = two_proportion_test(a, b);
        let t2 = two_proportion_test(b, a);
        assert!((t1.z + t2.z).abs() < 1e-12);
        assert!((t1.p_value - t2.p_value).abs() < 1e-12);
    }
}
