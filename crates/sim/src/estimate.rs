//! Statistical estimators for Monte-Carlo results.

use std::fmt;

/// A Bernoulli proportion estimated from repeated trials (e.g. "fraction
/// of deployments in which the dense grid met the necessary condition").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProportionEstimate {
    successes: usize,
    trials: usize,
}

impl ProportionEstimate {
    /// Creates an estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    #[must_use]
    pub fn new(successes: usize, trials: usize) -> Self {
        assert!(
            successes <= trials,
            "successes {successes} exceed trials {trials}"
        );
        ProportionEstimate { successes, trials }
    }

    /// Number of successful trials.
    #[must_use]
    pub fn successes(&self) -> usize {
        self.successes
    }

    /// Total number of trials.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The point estimate `successes/trials` (0 for zero trials).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Standard error of the proportion under the normal approximation.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.mean();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Wilson score interval at `z` standard deviations (z = 1.96 for 95%).
    ///
    /// Unlike the Wald interval, Wilson behaves sensibly at `p ≈ 0` and
    /// `p ≈ 1`, exactly where coverage-transition experiments live.
    ///
    /// # Panics
    ///
    /// Panics if `z` is negative or not finite.
    #[must_use]
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        assert!(
            z.is_finite() && z >= 0.0,
            "z must be finite and non-negative"
        );
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.mean();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl fmt::Display for ProportionEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.wilson_interval(1.96);
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] ({}/{})",
            self.mean(),
            lo,
            hi,
            self.successes,
            self.trials
        )
    }
}

/// A sample mean with spread, for continuous Monte-Carlo observables
/// (e.g. the measured full-view covered fraction per deployment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanEstimate {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanEstimate {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        MeanEstimate {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds the estimate from a sample iterator.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut e = MeanEstimate::new();
        for x in samples {
            e.push(x);
        }
        e
    }

    /// Adds one observation (Welford's online update).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "samples must be finite, got {x}");
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The sample mean (0 for an empty estimate).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for MeanEstimate {
    fn default() -> Self {
        MeanEstimate::new()
    }
}

impl Extend<f64> for MeanEstimate {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for MeanEstimate {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        MeanEstimate::from_samples(iter)
    }
}

impl fmt::Display for MeanEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} (n={}, range [{:.6}, {:.6}])",
            self.mean(),
            self.std_error(),
            self.count,
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_basics() {
        let e = ProportionEstimate::new(30, 100);
        assert!((e.mean() - 0.3).abs() < 1e-15);
        assert!((e.std_error() - (0.3f64 * 0.7 / 100.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn proportion_zero_trials() {
        let e = ProportionEstimate::new(0, 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.std_error(), 0.0);
        assert_eq!(e.wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    fn wilson_contains_point_estimate_and_is_proper() {
        for (s, n) in [(0, 50), (1, 50), (25, 50), (49, 50), (50, 50)] {
            let e = ProportionEstimate::new(s, n);
            let (lo, hi) = e.wilson_interval(1.96);
            assert!(lo <= e.mean() + 1e-12 && e.mean() <= hi + 1e-12, "{s}/{n}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
            assert!(lo < hi);
        }
    }

    #[test]
    fn wilson_narrower_with_more_trials() {
        let small = ProportionEstimate::new(5, 10).wilson_interval(1.96);
        let large = ProportionEstimate::new(500, 1000).wilson_interval(1.96);
        assert!(large.1 - large.0 < small.1 - small.0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn proportion_rejects_overcount() {
        let _ = ProportionEstimate::new(3, 2);
    }

    #[test]
    fn mean_estimate_known_values() {
        let e = MeanEstimate::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.count(), 4);
        assert!((e.mean() - 2.5).abs() < 1e-15);
        assert!((e.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
    }

    #[test]
    fn mean_estimate_empty_and_singleton() {
        let e = MeanEstimate::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        let e = MeanEstimate::from_samples([7.0]);
        assert_eq!(e.mean(), 7.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.std_error(), 0.0);
    }

    #[test]
    fn welford_matches_naive_on_awkward_data() {
        let data: Vec<f64> = (0..1000).map(|i| 1e6 + (i % 7) as f64 * 0.01).collect();
        let e = MeanEstimate::from_samples(data.iter().copied());
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((e.mean() - mean).abs() < 1e-6);
        assert!((e.variance() - var).abs() / var.max(1e-12) < 1e-3);
    }

    #[test]
    fn displays() {
        assert!(ProportionEstimate::new(1, 2).to_string().contains("1/2"));
        assert!(MeanEstimate::from_samples([1.0])
            .to_string()
            .contains("n=1"));
    }
}
