//! # fullview-sim
//!
//! Monte-Carlo simulation engine for the full-view coverage experiments:
//!
//! * [`run_proportion`] / [`run_mean`] / [`run_trials_map`] — parallel,
//!   deterministic trial execution (per-trial seeds derived from a master
//!   seed, results independent of thread count);
//! * [`ProportionEstimate`] / [`MeanEstimate`] — estimators with Wilson
//!   intervals and Welford accumulation;
//! * [`two_proportion_test`] — the significance test behind the §VI-A
//!   "sensing area is decisive" equivalence experiment;
//! * [`evaluate_grid_parallel`] / [`evaluate_dense_grid_parallel`] —
//!   intra-sweep parallel dense-grid coverage evaluation, bit-identical
//!   to the serial `fullview_core::evaluate_grid` for any thread count;
//! * [`linspace`] / [`logspace`] / [`logspace_counts`] — sweep grids;
//! * [`Table`] and [`asciiplot`] — the tabular and figure output of every
//!   experiment binary;
//! * [`with_random_failures`] — fault injection for the robustness
//!   extension.
//!
//! # Example
//!
//! ```
//! use fullview_sim::{run_proportion, RunConfig};
//! use fullview_deploy::deploy_uniform;
//! use fullview_geom::{Point, Torus};
//! use fullview_core::{is_full_view_covered, EffectiveAngle};
//! use fullview_model::{NetworkProfile, SensorSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::f64::consts::PI;
//!
//! // P(the centre point is full-view covered) over random deployments.
//! let profile = NetworkProfile::homogeneous(SensorSpec::new(0.2, PI)?);
//! let theta = EffectiveAngle::new(PI / 3.0)?;
//! let est = run_proportion(RunConfig::new(64).with_seed(11), |seed| {
//!     let mut rng = StdRng::seed_from_u64(seed);
//!     let net = deploy_uniform(Torus::unit(), &profile, 200, &mut rng).expect("valid profile");
//!     is_full_view_covered(&net, Point::new(0.5, 0.5), theta)
//! });
//! assert_eq!(est.trials(), 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asciiplot;
mod estimate;
mod failure;
mod gridsweep;
mod histogram;
mod runner;
mod stats;
mod sweep;
mod table;

pub use estimate::{MeanEstimate, ProportionEstimate};
pub use failure::with_random_failures;
pub use gridsweep::{
    evaluate_dense_grid_parallel, evaluate_grid_parallel, evaluate_grid_parallel_flat,
};
pub use histogram::Histogram;
pub use runner::{run_mean, run_proportion, run_trials_map, RunConfig};
pub use stats::{erf, standard_normal_cdf, two_proportion_test, TwoProportionTest};
pub use sweep::{linspace, logspace, logspace_counts};
pub use table::{fmt_g, Table};
