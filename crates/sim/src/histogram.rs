//! Fixed-bin histograms with ASCII rendering, for reporting Monte-Carlo
//! sample distributions (per-trial covered fractions, hole sizes,
//! view multiplicities …).

use std::fmt;

/// A histogram with equal-width bins over a fixed range; out-of-range
/// samples are clamped into the edge bins so mass is never lost.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is not finite with `lo < hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad histogram range [{lo}, {hi}]"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram directly from samples.
    ///
    /// # Panics
    ///
    /// As [`Histogram::new`]; non-finite samples panic.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(
        lo: f64,
        hi: f64,
        bins: usize,
        samples: I,
    ) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        for x in samples {
            h.record(x);
        }
        h
    }

    /// Records one sample (clamped into range).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "histogram samples must be finite, got {x}");
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (t.max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Adds every sample recorded into `other` to this histogram.
    ///
    /// Merging per-worker shards must lose nothing: the merged total is
    /// exactly the sum of the shard totals, bin by bin — the invariant
    /// the service's sharded metrics rely on so `stats` quantiles stay
    /// consistent under concurrent recording.
    ///
    /// # Panics
    ///
    /// Panics when the histograms have different shapes (range bits or
    /// bin count) — merging incompatible lattices would silently shift
    /// samples between bins.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo.to_bits() == other.lo.to_bits()
                && self.hi.to_bits() == other.hi.to_bits()
                && self.counts.len() == other.counts.len(),
            "histogram shapes differ: [{}, {}] x{} vs [{}, {}] x{}",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len()
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from bin midpoints.
    ///
    /// # Panics
    ///
    /// Panics if `q ∉ [0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const BAR: usize = 40;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, c) in self.counts.iter().enumerate() {
            let lo = self.lo + i as f64 * width;
            let bar_len = (*c as f64 / max as f64 * BAR as f64).round() as usize;
            writeln!(
                f,
                "  [{lo:>8.4}, {:>8.4})  {:>6}  {}",
                lo + width,
                c,
                "#".repeat(bar_len)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let h = Histogram::from_samples(0.0, 1.0, 4, [0.1, 0.3, 0.6, 0.9, 0.95]);
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn clamps_out_of_range() {
        let h = Histogram::from_samples(0.0, 1.0, 2, [-5.0, 5.0, 0.5]);
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn upper_edge_goes_to_last_bin() {
        let h = Histogram::from_samples(0.0, 1.0, 4, [1.0]);
        assert_eq!(h.counts(), &[0, 0, 0, 1]);
    }

    #[test]
    fn quantiles() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_samples(0.0, 1.0, 100, samples);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 0.5).abs() < 0.02, "median {median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 0.9).abs() < 0.02, "p90 {p90}");
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).unwrap() <= 1.0);
    }

    #[test]
    fn merge_equals_histogram_of_concatenated_samples() {
        let a_samples = [0.1, 0.3, 0.6, 0.9];
        let b_samples = [0.2, 0.6, 0.95, 0.99, 0.5];
        let mut merged = Histogram::from_samples(0.0, 1.0, 8, a_samples);
        merged.merge(&Histogram::from_samples(0.0, 1.0, 8, b_samples));
        let all = Histogram::from_samples(0.0, 1.0, 8, a_samples.iter().chain(&b_samples).copied());
        assert_eq!(merged, all, "merge must be sample-exact");
        assert_eq!(merged.total(), 9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::from_samples(0.0, 1.0, 4, [0.25, 0.75]);
        let before = h.clone();
        h.merge(&Histogram::new(0.0, 1.0, 4));
        assert_eq!(h, before);
    }

    #[test]
    #[should_panic(expected = "histogram shapes differ")]
    fn merge_rejects_mismatched_shapes() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.merge(&Histogram::new(0.0, 1.0, 8));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        // p50 ≤ p99 ≤ p999 must hold for any sample set — the `stats`
        // endpoint reports these side by side and a non-monotone pair
        // would be an obvious lie.
        let samples: Vec<f64> = (0..500).map(|i| (i as f64 * 0.017).sin().abs()).collect();
        let h = Histogram::from_samples(0.0, 1.0, 64, samples);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
    }

    #[test]
    fn empty_quantile_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn display_renders_bars() {
        let h = Histogram::from_samples(0.0, 1.0, 2, [0.1, 0.1, 0.9]);
        let s = h.to_string();
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_sample_panics() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "bad histogram range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 2);
    }
}
