//! Property-based tests for the simulation engine's estimators and
//! utilities.

use fullview_sim::{
    linspace, logspace, run_proportion, run_trials_map, Histogram, MeanEstimate,
    ProportionEstimate, RunConfig,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn proportion_estimate_invariants(s in 0usize..500, extra in 0usize..500) {
        let n = s + extra;
        let e = ProportionEstimate::new(s, n);
        prop_assert!((0.0..=1.0).contains(&e.mean()));
        prop_assert!(e.std_error() >= 0.0);
        let (lo, hi) = e.wilson_interval(1.96);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= e.mean() + 1e-12 || n == 0);
        prop_assert!(e.mean() <= hi + 1e-12 || n == 0);
    }

    #[test]
    fn wilson_narrows_with_scale(s in 1usize..50, n_mult in 2usize..20) {
        let small = ProportionEstimate::new(s, 50);
        let large = ProportionEstimate::new(s * n_mult, 50 * n_mult);
        let (a, b) = small.wilson_interval(1.96);
        let (c, d) = large.wilson_interval(1.96);
        prop_assert!(d - c <= b - a + 1e-12, "interval failed to narrow");
    }

    #[test]
    fn mean_estimate_matches_two_pass(samples in prop::collection::vec(-1e3..1e3f64, 0..200)) {
        let e = MeanEstimate::from_samples(samples.iter().copied());
        prop_assert_eq!(e.count(), samples.len());
        if samples.is_empty() {
            prop_assert_eq!(e.mean(), 0.0);
            return Ok(());
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((e.mean() - mean).abs() < 1e-9);
        if samples.len() >= 2 {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                / (samples.len() - 1) as f64;
            prop_assert!((e.variance() - var).abs() < 1e-6 * var.max(1.0));
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.min(), min);
        prop_assert_eq!(e.max(), max);
        prop_assert!(min <= e.mean() + 1e-9 && e.mean() <= max + 1e-9);
    }

    #[test]
    fn histogram_conserves_mass_and_orders_quantiles(
        samples in prop::collection::vec(-2.0..3.0f64, 1..300),
        bins in 1usize..40,
    ) {
        let h = Histogram::from_samples(0.0, 1.0, bins, samples.iter().copied());
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), samples.len() as u64);
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q75 = h.quantile(0.75).unwrap();
        prop_assert!(q25 <= q50 + 1e-12 && q50 <= q75 + 1e-12);
    }

    #[test]
    fn linspace_contract(lo in -100.0..100.0f64, span in 0.0..100.0f64, count in 1usize..100) {
        let hi = lo + span;
        let v = linspace(lo, hi, count);
        prop_assert_eq!(v.len(), count);
        prop_assert!((v[0] - lo).abs() < 1e-9);
        if count > 1 {
            prop_assert!((v[count - 1] - hi).abs() < 1e-9);
        }
        prop_assert!(v.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn logspace_contract(lo in 1e-3..10.0f64, factor in 1.0..1e4f64, count in 1usize..50) {
        let hi = lo * factor;
        let v = logspace(lo, hi, count);
        prop_assert_eq!(v.len(), count);
        prop_assert!((v[0] - lo).abs() / lo < 1e-9);
        if count > 1 {
            prop_assert!((v[count - 1] - hi).abs() / hi < 1e-9);
            // Constant ratio between consecutive entries.
            let r0 = v[1] / v[0];
            for w in v.windows(2) {
                prop_assert!((w[1] / w[0] - r0).abs() < 1e-6 * r0);
            }
        }
    }

    #[test]
    fn runner_thread_count_invariance(
        trials in 0usize..300,
        seed in 0u64..10_000,
        threads in 1usize..6,
    ) {
        let base = run_trials_map(RunConfig::new(trials).with_seed(seed).with_threads(1), |s| {
            s.wrapping_mul(0x9e37_79b9).rotate_left(7)
        });
        let multi = run_trials_map(
            RunConfig::new(trials).with_seed(seed).with_threads(threads),
            |s| s.wrapping_mul(0x9e37_79b9).rotate_left(7),
        );
        prop_assert_eq!(base, multi);
    }

    #[test]
    fn proportion_runner_counts_match_manual(trials in 0usize..300, seed in 0u64..10_000) {
        let pred = |s: u64| s % 3 == 0;
        let est = run_proportion(RunConfig::new(trials).with_seed(seed), pred);
        let manual = run_trials_map(RunConfig::new(trials).with_seed(seed), pred)
            .into_iter()
            .filter(|b| *b)
            .count();
        prop_assert_eq!(est.successes(), manual);
        prop_assert_eq!(est.trials(), trials);
    }
}
