//! Differential test for the tiled evaluation engine: the tile-claiming
//! sweep, the flat-chunk sweep, and the serial per-point path must produce
//! bit-identical [`fullview_core::GridCoverageReport`]s.
//!
//! Every report field is an integer tally over a disjoint partition of the
//! grid, so equality must be exact (`==` on every field) for any execution
//! shape: serial vs parallel, tiled vs flat, and any thread count —
//! including 7, which divides neither the chunk count nor the tile count.

use fullview_core::{evaluate_grid, use_tiled, EffectiveAngle, GridCoverageReport};
use fullview_deploy::deploy_uniform;
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile, SensorSpec};
use fullview_sim::{evaluate_grid_parallel, evaluate_grid_parallel_flat};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Asserts every execution shape agrees on `net × grid` and returns the
/// reference report.
fn assert_all_backends_agree(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    label: &str,
) -> GridCoverageReport {
    let start = Angle::new(0.37);
    let reference = evaluate_grid(net, theta, grid, start);
    for threads in THREADS {
        let tiled = evaluate_grid_parallel(net, theta, grid, start, threads);
        assert_eq!(tiled, reference, "{label}: auto/tiled threads={threads}");
        let flat = evaluate_grid_parallel_flat(net, theta, grid, start, threads);
        assert_eq!(flat, reference, "{label}: flat threads={threads}");
    }
    reference
}

#[test]
fn tiled_and_flat_agree_across_seeds() {
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, PI).unwrap());
    for seed in [3u64, 77, 0xC0FFEE] {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = deploy_uniform(Torus::unit(), &profile, 140, &mut rng).unwrap();
        let grid = UnitGrid::new(Torus::unit(), 60);
        let r = assert_all_backends_agree(&net, &grid, theta, &format!("seed {seed}"));
        assert_eq!(r.total_points, 3600);
    }
}

#[test]
fn heterogeneous_profile_mixed_radii_and_aov() {
    // Mixed r_y stresses the per-camera radius² prefilter in the tile
    // cursor (candidates pinned at the global max radius, filtered
    // per-camera); mixed φ_y stresses the sector check.
    let profile = NetworkProfile::builder()
        .group(SensorSpec::new(0.06, PI / 3.0).unwrap(), 0.5)
        .group(SensorSpec::new(0.18, 2.0 * PI).unwrap(), 0.3)
        .group(SensorSpec::new(0.27, PI / 7.0).unwrap(), 0.2)
        .build()
        .unwrap();
    let theta = EffectiveAngle::new(0.45 * PI).unwrap();
    for seed in [11u64, 5150] {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = deploy_uniform(Torus::unit(), &profile, 180, &mut rng).unwrap();
        for side in [31usize, 64] {
            let grid = UnitGrid::new(Torus::unit(), side);
            assert_all_backends_agree(&net, &grid, theta, &format!("seed {seed} side {side}"));
        }
    }
}

#[test]
fn empty_network_degenerate() {
    // Empty network: max radius 0 collapses the index to its minimum cell
    // fraction, so the tiled policy must bow out on small grids — and stay
    // exact when it doesn't.
    let net = CameraNetwork::new(Torus::unit(), Vec::new());
    let theta = EffectiveAngle::new(PI / 2.0).unwrap();
    for side in [1usize, 13, 40] {
        let grid = UnitGrid::new(Torus::unit(), side);
        let r = assert_all_backends_agree(&net, &grid, theta, &format!("empty side {side}"));
        assert_eq!(r.covered, 0);
        assert_eq!(r.total_points, side * side);
    }
}

#[test]
fn single_camera_degenerate() {
    let spec = SensorSpec::new(0.25, PI).unwrap();
    let net = CameraNetwork::new(
        Torus::unit(),
        vec![Camera::new(
            Point::new(0.31, 0.62),
            Angle::new(1.1),
            spec,
            GroupId(0),
        )],
    );
    let theta = EffectiveAngle::new(PI / 2.0).unwrap();
    for side in [1usize, 9, 48] {
        let grid = UnitGrid::new(Torus::unit(), side);
        let r = assert_all_backends_agree(&net, &grid, theta, &format!("n=1 side {side}"));
        // One sector-bounded camera never full-view covers a non-colocated
        // point, but 1-coverage must register somewhere on a fine grid.
        if side == 48 {
            assert!(r.covered > 0);
        }
    }
}

#[test]
fn sensing_radius_exceeding_torus_side_degenerate() {
    // r = 1.5 on the unit torus: every tile's candidate window is a full
    // scan, so tiling degenerates to the whole-network query and must
    // still agree bit-for-bit.
    let spec = SensorSpec::new(1.5, 2.0 * PI).unwrap();
    let cams: Vec<Camera> = (0..9)
        .map(|i| {
            let p = Point::new(0.1 + 0.09 * i as f64, (0.13 * i as f64) % 1.0);
            Camera::new(p, Angle::new(i as f64), spec, GroupId(i % 2))
        })
        .collect();
    let net = CameraNetwork::new(Torus::unit(), cams);
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    let grid = UnitGrid::new(Torus::unit(), 25);
    let r = assert_all_backends_agree(&net, &grid, theta, "radius > side");
    // Omni cameras with unbounded reach cover everything.
    assert_eq!(r.covered, r.total_points);
}

#[test]
fn tiled_policy_engages_on_dense_grids() {
    // Sanity: the differential tests above exercise BOTH code paths.
    let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, PI).unwrap());
    let mut rng = StdRng::seed_from_u64(9);
    let net = deploy_uniform(Torus::unit(), &profile, 140, &mut rng).unwrap();
    assert!(use_tiled(&net, &UnitGrid::new(Torus::unit(), 60)));
    let empty = CameraNetwork::new(Torus::unit(), Vec::new());
    assert!(!use_tiled(&empty, &UnitGrid::new(Torus::unit(), 13)));
}
