//! Differential test: the parallel dense-grid sweep must be bit-identical
//! to the serial `fullview_core::evaluate_grid` for every thread count.
//!
//! Integer tallies over disjoint chunks merge exactly, so even float-free
//! equality (`==` on every report field) must hold regardless of
//! scheduling. Thread counts deliberately include 7 (doesn't divide the
//! chunk count) and more threads than chunks.

use fullview_core::{dense_grid, evaluate_grid, EffectiveAngle};
use fullview_deploy::deploy_uniform;
use fullview_geom::{Angle, Torus, UnitGrid};
use fullview_model::{CameraNetwork, NetworkProfile, SensorSpec};
use fullview_sim::{evaluate_dense_grid_parallel, evaluate_grid_parallel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn network(n: usize, seed: u64, r: f64, phi: f64) -> CameraNetwork {
    let profile = NetworkProfile::homogeneous(SensorSpec::new(r, phi).unwrap());
    let mut rng = StdRng::seed_from_u64(seed);
    deploy_uniform(Torus::unit(), &profile, n, &mut rng).unwrap()
}

#[test]
fn parallel_equals_serial_for_all_thread_counts_and_seeds() {
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    for seed in [0u64, 42, 0xDEAD_BEEF] {
        let net = network(150, seed, 0.16, PI);
        // Big enough for several 1024-point chunks.
        let grid = UnitGrid::new(Torus::unit(), 70); // 4900 points
        let serial = evaluate_grid(&net, theta, &grid, Angle::ZERO);
        for threads in [1usize, 2, 4, 7] {
            let par = evaluate_grid_parallel(&net, theta, &grid, Angle::ZERO, threads);
            assert_eq!(
                par, serial,
                "parallel sweep diverged: threads={threads} seed={seed}"
            );
        }
    }
}

#[test]
fn mask_screened_parallel_matches_wholesale_exact() {
    // The parallel sweep builds `GridEvaluator::new` internally, so it
    // inherits the two-stage sector-mask kernel. Pin it against the
    // wholesale exact per-point evaluator (`new_exact`, no screening at
    // all) for every thread count — this crosses both the kernel/exact
    // boundary and the serial/parallel boundary in one differential.
    let theta = EffectiveAngle::new(PI / 3.0).unwrap();
    for (seed, phi) in [(1u64, PI), (9, 2.0 * PI), (77, PI / 6.0)] {
        let net = network(120, seed, 0.15, phi);
        let grid = UnitGrid::new(Torus::unit(), 48); // 2304 points
        let exact = fullview_core::GridEvaluator::new_exact(theta, Angle::ZERO).evaluate_range(
            &net,
            &grid,
            0..grid.len(),
        );
        for threads in [1usize, 2, 4] {
            let par = evaluate_grid_parallel(&net, theta, &grid, Angle::ZERO, threads);
            assert_eq!(par, exact, "threads={threads} seed={seed} phi={phi}");
        }
    }
}

#[test]
fn dense_grid_wrapper_matches_core_wrapper() {
    let theta = EffectiveAngle::new(PI / 4.0).unwrap();
    let net = network(100, 7, 0.2, PI / 2.0);
    let serial = fullview_core::evaluate_dense_grid(&net, theta, Angle::ZERO);
    for threads in [0usize, 1, 2, 4, 7] {
        let par = evaluate_dense_grid_parallel(&net, theta, Angle::ZERO, threads);
        assert_eq!(par, serial, "threads={threads}");
    }
    // Both use the paper's m = ⌈n ln n⌉ grid.
    let grid = dense_grid(Torus::unit(), net.len());
    assert_eq!(serial.total_points, grid.len());
}

#[test]
fn heterogeneous_profile_and_awkward_start_line_agree() {
    // Mixed radii stress the spatial-index window; a non-zero start line
    // stresses the sector partitions.
    let profile = NetworkProfile::builder()
        .group(SensorSpec::new(0.08, PI / 2.0).unwrap(), 0.6)
        .group(SensorSpec::new(0.22, PI / 8.0).unwrap(), 0.4)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let net = deploy_uniform(Torus::unit(), &profile, 200, &mut rng).unwrap();
    let theta = EffectiveAngle::new(0.41 * PI).unwrap();
    let start = Angle::new(1.234);
    let grid = UnitGrid::new(Torus::unit(), 64); // 4096 points = 4 exact chunks
    let serial = evaluate_grid(&net, theta, &grid, start);
    for threads in [2usize, 3, 5, 8] {
        assert_eq!(
            evaluate_grid_parallel(&net, theta, &grid, start, threads),
            serial,
            "threads={threads}"
        );
    }
}
