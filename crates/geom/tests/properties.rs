//! Property-based tests for the geometry substrate.

use fullview_geom::{
    circular_distance, normalize_radians, Angle, Arc, ArcSet, Point, SpatialGrid, Torus, UnitGrid,
};
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

fn finite_angle() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn arc_strategy() -> impl Strategy<Value = Arc> {
    (0.0..TAU, 0.0..TAU).prop_map(|(start, width)| Arc::new(Angle::new(start), width))
}

fn unit_point() -> impl Strategy<Value = Point> {
    (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    // ---------- Angle ----------

    #[test]
    fn normalization_is_idempotent(raw in finite_angle()) {
        let once = normalize_radians(raw);
        let twice = normalize_radians(once);
        prop_assert!((once - twice).abs() < 1e-12);
        prop_assert!((0.0..TAU).contains(&once));
    }

    #[test]
    fn angle_distance_symmetric_and_bounded(a in finite_angle(), b in finite_angle()) {
        let d1 = circular_distance(a, b);
        let d2 = circular_distance(b, a);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=PI + 1e-12).contains(&d1));
    }

    #[test]
    fn angle_distance_triangle_inequality(a in finite_angle(), b in finite_angle(), c in finite_angle()) {
        let ab = circular_distance(a, b);
        let bc = circular_distance(b, c);
        let ac = circular_distance(a, c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn ccw_deltas_sum_to_tau(a in finite_angle(), b in finite_angle()) {
        let x = Angle::new(a);
        let y = Angle::new(b);
        if !x.approx_eq(y) {
            prop_assert!((x.ccw_delta(y) + y.ccw_delta(x) - TAU).abs() < 1e-9);
        }
    }

    #[test]
    fn rotate_by_delta_lands_at_ccw_delta(a in finite_angle(), d in 0.0..TAU) {
        let x = Angle::new(a);
        let y = x.rotate(d);
        prop_assert!((x.ccw_delta(y) - d).abs() < 1e-9 || (x.ccw_delta(y) - d).abs() > TAU - 1e-9);
    }

    // ---------- Arc ----------

    #[test]
    fn arc_contains_its_bisector_and_endpoints(arc in arc_strategy()) {
        prop_assert!(arc.contains(arc.start()));
        prop_assert!(arc.contains(arc.bisector()));
        prop_assert!(arc.contains(arc.end()));
    }

    #[test]
    fn arc_segments_preserve_width(arc in arc_strategy()) {
        let total: f64 = arc.to_segments().iter().map(|(lo, hi)| hi - lo).sum();
        prop_assert!((total - arc.width()).abs() < 1e-9);
    }

    #[test]
    fn centered_arc_contains_iff_within_half_width(
        center in finite_angle(),
        half in 0.0..PI,
        probe in finite_angle(),
    ) {
        let c = Angle::new(center);
        let p = Angle::new(probe);
        let arc = Arc::centered(c, half);
        let d = c.distance(p);
        if d < half - 1e-6 {
            prop_assert!(arc.contains(p), "inside point {p} not contained, d={d}, half={half}");
        }
        if d > half + 1e-6 {
            prop_assert!(!arc.contains(p), "outside point {p} contained, d={d}, half={half}");
        }
    }

    // ---------- ArcSet ----------

    #[test]
    fn arcset_measure_subadditive(arcs in prop::collection::vec(arc_strategy(), 0..12)) {
        let set: ArcSet = arcs.iter().copied().collect();
        let sum: f64 = arcs.iter().map(Arc::width).sum();
        prop_assert!(set.measure() <= sum + 1e-6);
        prop_assert!(set.measure() <= TAU + 1e-9);
        let max_single = arcs.iter().map(Arc::width).fold(0.0, f64::max);
        prop_assert!(set.measure() >= max_single - 1e-9);
    }

    #[test]
    fn arcset_measure_plus_gaps_is_tau(arcs in prop::collection::vec(arc_strategy(), 0..12)) {
        let set: ArcSet = arcs.iter().copied().collect();
        let gap_total: f64 = set.gaps().iter().map(Arc::width).sum();
        prop_assert!((set.measure() + gap_total - TAU).abs() < 1e-6);
    }

    #[test]
    fn arcset_contains_every_inserted_bisector(arcs in prop::collection::vec(arc_strategy(), 1..12)) {
        let set: ArcSet = arcs.iter().copied().collect();
        for arc in &arcs {
            prop_assert!(set.contains(arc.bisector()), "lost bisector of {arc}");
        }
    }

    #[test]
    fn arcset_gaps_disjoint_from_set(arcs in prop::collection::vec(arc_strategy(), 0..12)) {
        let set: ArcSet = arcs.iter().copied().collect();
        for gap in set.gaps() {
            // Probe strictly interior points of each gap.
            if gap.width() > 1e-6 {
                let mid = gap.bisector();
                prop_assert!(!set.contains(mid), "gap bisector {mid} claimed covered");
            }
        }
    }

    #[test]
    fn arcset_covers_circle_iff_no_gaps(arcs in prop::collection::vec(arc_strategy(), 0..12)) {
        let set: ArcSet = arcs.iter().copied().collect();
        prop_assert_eq!(set.covers_circle(), set.gaps().is_empty());
        prop_assert_eq!(set.covers_circle(), set.largest_gap() == 0.0);
    }

    #[test]
    fn arcset_insertion_order_invariant(arcs in prop::collection::vec(arc_strategy(), 0..8)) {
        let forward: ArcSet = arcs.iter().copied().collect();
        let backward: ArcSet = arcs.iter().rev().copied().collect();
        prop_assert!((forward.measure() - backward.measure()).abs() < 1e-6);
        prop_assert_eq!(forward.covers_circle(), backward.covers_circle());
    }

    #[test]
    fn arcset_membership_monotone_under_insert(
        arcs in prop::collection::vec(arc_strategy(), 1..8),
        extra in arc_strategy(),
        probe in finite_angle(),
    ) {
        let p = Angle::new(probe);
        let before: ArcSet = arcs.iter().copied().collect();
        let mut after = before.clone();
        after.insert(extra);
        if before.contains(p) {
            prop_assert!(after.contains(p), "insert removed membership of {p}");
        }
    }

    // ---------- Torus ----------

    #[test]
    fn torus_distance_metric_axioms(a in unit_point(), b in unit_point(), c in unit_point()) {
        let t = Torus::unit();
        prop_assert!((t.distance(a, b) - t.distance(b, a)).abs() < 1e-12);
        prop_assert!(t.distance(a, a) < 1e-12);
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c) + 1e-9);
        prop_assert!(t.distance(a, b) <= 0.5f64.hypot(0.5) + 1e-12);
    }

    #[test]
    fn torus_direction_is_opposite_when_reversed(a in unit_point(), b in unit_point()) {
        let t = Torus::unit();
        // Skip near-coincident and near-antipodal pairs, where the minimal
        // image is ambiguous.
        let d = t.distance(a, b);
        prop_assume!(d > 1e-6);
        let (dx, dy) = t.displacement(a, b);
        prop_assume!(dx.abs() < 0.5 - 1e-6 && dy.abs() < 0.5 - 1e-6);
        let ab = t.direction(a, b).unwrap();
        let ba = t.direction(b, a).unwrap();
        prop_assert!(ab.distance(ba.opposite()) < 1e-6, "{ab} vs {ba}");
    }

    #[test]
    fn torus_offset_distance_roundtrip(p in unit_point(), dir in finite_angle(), dist in 0.0..0.49f64) {
        let t = Torus::unit();
        let q = t.offset(p, Angle::new(dir), dist);
        prop_assert!((t.distance(p, q) - dist).abs() < 1e-9);
    }

    // ---------- SpatialGrid ----------

    #[test]
    fn spatial_grid_matches_brute_force(
        pts in prop::collection::vec(unit_point(), 0..60),
        center in unit_point(),
        radius in 0.0..0.7f64,
        cell in 0.02..0.5f64,
    ) {
        let t = Torus::unit();
        let idx = SpatialGrid::build(t, &pts, cell);
        let mut got = idx.query_within(center, radius);
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| t.distance(center, **p) <= radius)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    // ---------- UnitGrid ----------

    #[test]
    fn unit_grid_minimal_and_sufficient(m in 1usize..5000) {
        let g = UnitGrid::with_at_least(Torus::unit(), m);
        prop_assert!(g.len() >= m);
        let k = g.side_count();
        prop_assert!(k == 1 || (k - 1) * (k - 1) < m);
    }
}

proptest! {
    #[test]
    fn arcset_complement_partitions_circle(arcs in prop::collection::vec(arc_strategy(), 0..10)) {
        let s: ArcSet = arcs.iter().copied().collect();
        let c = s.complement();
        prop_assert!((s.measure() + c.measure() - TAU).abs() < 1e-6);
        // Nothing is in both (probe gap bisectors and arc bisectors).
        for gap in s.gaps() {
            if gap.width() > 1e-6 {
                prop_assert!(c.contains(gap.bisector()));
                prop_assert!(!s.contains(gap.bisector()));
            }
        }
    }

    #[test]
    fn arcset_intersection_bounded_by_operands(
        a in prop::collection::vec(arc_strategy(), 0..8),
        b in prop::collection::vec(arc_strategy(), 0..8),
    ) {
        let sa: ArcSet = a.into_iter().collect();
        let sb: ArcSet = b.into_iter().collect();
        let i = sa.intersect(&sb);
        prop_assert!(i.measure() <= sa.measure() + 1e-6);
        prop_assert!(i.measure() <= sb.measure() + 1e-6);
        // Inclusion–exclusion lower bound: |A∩B| >= |A| + |B| - 2π.
        prop_assert!(i.measure() >= sa.measure() + sb.measure() - TAU - 1e-6);
    }

    #[test]
    fn arcset_intersection_commutative(
        a in prop::collection::vec(arc_strategy(), 0..8),
        b in prop::collection::vec(arc_strategy(), 0..8),
    ) {
        let sa: ArcSet = a.into_iter().collect();
        let sb: ArcSet = b.into_iter().collect();
        let ab = sa.intersect(&sb);
        let ba = sb.intersect(&sa);
        prop_assert!((ab.measure() - ba.measure()).abs() < 1e-6);
    }

    #[test]
    fn arcset_membership_respects_intersection(
        a in prop::collection::vec(arc_strategy(), 1..8),
        b in prop::collection::vec(arc_strategy(), 1..8),
        probe in 0.0..TAU,
    ) {
        let sa: ArcSet = a.into_iter().collect();
        let sb: ArcSet = b.into_iter().collect();
        let i = sa.intersect(&sb);
        let p = Angle::new(probe);
        // Probe away from boundaries to dodge tolerance effects: require
        // clear membership margins on both sides.
        if i.contains(p) {
            prop_assert!(sa.contains(p) || near_boundary(&sa, p));
            prop_assert!(sb.contains(p) || near_boundary(&sb, p));
        }
    }
}

/// Whether `p` is within a loose tolerance of some arc boundary of `s` —
/// used to excuse membership disagreements at knife edges.
fn near_boundary(s: &ArcSet, p: Angle) -> bool {
    s.arcs()
        .iter()
        .any(|a| a.start().distance(p) < 1e-6 || a.end().distance(p) < 1e-6)
        || s.gaps()
            .iter()
            .any(|g| g.start().distance(p) < 1e-6 || g.end().distance(p) < 1e-6)
}
