//! Regular lattices of points over a torus.
//!
//! Two uses in this project: the *dense grid* `M` used to discretize area
//! coverage (§III-A, following Kumar et al. [6]), and the deterministic
//! deployment baselines (square and triangular lattices, the latter being
//! the structure used by Wang & Cao [4] in the comparator discussed in
//! §VII-C).

use crate::point::Point;
use crate::torus::Torus;

/// A `k × k` uniform grid of points over a torus — the dense grid `M` of
/// §III-A (with `m = k²` points).
///
/// Points are placed at cell centres so that the grid is invariant under
/// the torus identification (no doubled row at the seam).
///
/// # Examples
///
/// ```
/// use fullview_geom::{Torus, UnitGrid};
///
/// let grid = UnitGrid::new(Torus::unit(), 4);
/// assert_eq!(grid.len(), 16);
/// let pts: Vec<_> = grid.iter().collect();
/// assert!((pts[0].x - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitGrid {
    torus: Torus,
    k: usize,
}

impl UnitGrid {
    /// Creates a `k × k` grid over `torus`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(torus: Torus, k: usize) -> Self {
        assert!(k > 0, "grid side must be positive");
        UnitGrid { torus, k }
    }

    /// Creates the smallest square grid with at least `m` points — the
    /// paper's `√m × √m` dense grid with `m = n log n` (§III-A).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn with_at_least(torus: Torus, m: usize) -> Self {
        assert!(m > 0, "grid must have at least one point");
        let mut k = (m as f64).sqrt().floor() as usize;
        while k * k < m {
            k += 1;
        }
        UnitGrid::new(torus, k)
    }

    /// Grid side (points per row).
    #[must_use]
    pub fn side_count(&self) -> usize {
        self.k
    }

    /// Total number of grid points, `k²`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.k * self.k
    }

    /// Whether the grid is empty (never true: construction requires
    /// `k > 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Spacing between adjacent grid points.
    #[must_use]
    pub fn spacing(&self) -> f64 {
        self.torus.side() / self.k as f64
    }

    /// The grid point with row-major index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[must_use]
    pub fn point(&self, idx: usize) -> Point {
        assert!(idx < self.len(), "grid index {idx} out of range");
        let (i, j) = (idx % self.k, idx / self.k);
        let step = self.spacing();
        Point::new((i as f64 + 0.5) * step, (j as f64 + 0.5) * step)
    }

    /// Iterates over all grid points in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.len()).map(move |i| self.point(i))
    }
}

/// Generates the points of a square lattice of the given `spacing` covering
/// the fundamental domain of `torus`.
///
/// The spacing is adjusted down to the nearest value dividing the torus side
/// evenly, so that the lattice is seam-consistent.
///
/// # Panics
///
/// Panics if `spacing` is not finite and strictly positive, or larger than
/// the torus side.
#[must_use]
pub fn square_lattice(torus: &Torus, spacing: f64) -> Vec<Point> {
    assert!(
        spacing.is_finite() && spacing > 0.0,
        "lattice spacing must be finite and positive, got {spacing}"
    );
    assert!(
        spacing <= torus.side(),
        "lattice spacing {spacing} exceeds torus side {}",
        torus.side()
    );
    let k = (torus.side() / spacing).ceil() as usize;
    let step = torus.side() / k as f64;
    let mut pts = Vec::with_capacity(k * k);
    for j in 0..k {
        for i in 0..k {
            pts.push(Point::new(i as f64 * step, j as f64 * step));
        }
    }
    pts
}

/// Generates the points of a triangular (hexagonal-packing) lattice with
/// edge length ~`spacing` covering the fundamental domain of `torus`.
///
/// Rows are spaced `spacing·√3/2` apart with alternate rows offset by half
/// a spacing — the classic triangular lattice used by Wang & Cao \[4\] for
/// deterministic full-view deployment. Both the horizontal spacing and the
/// row height are adjusted to divide the torus side evenly (and the row
/// count is rounded to an even number) so the pattern closes seamlessly
/// around the torus.
///
/// # Panics
///
/// Panics if `spacing` is not finite and strictly positive, or larger than
/// the torus side.
#[must_use]
pub fn triangular_lattice(torus: &Torus, spacing: f64) -> Vec<Point> {
    assert!(
        spacing.is_finite() && spacing > 0.0,
        "lattice spacing must be finite and positive, got {spacing}"
    );
    assert!(
        spacing <= torus.side(),
        "lattice spacing {spacing} exceeds torus side {}",
        torus.side()
    );
    let side = torus.side();
    let cols = (side / spacing).ceil().max(1.0) as usize;
    let dx = side / cols as f64;
    let row_height = spacing * 3f64.sqrt() / 2.0;
    // Round rows to the nearest even count so offset rows alternate cleanly
    // around the seam.
    let mut rows = (side / row_height).round().max(2.0) as usize;
    if rows % 2 == 1 {
        rows += 1;
    }
    let dy = side / rows as f64;
    let mut pts = Vec::with_capacity(cols * rows);
    for j in 0..rows {
        let offset = if j % 2 == 0 { 0.0 } else { dx / 2.0 };
        for i in 0..cols {
            pts.push(torus.wrap(Point::new(i as f64 * dx + offset, j as f64 * dy)));
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_len_and_spacing() {
        let g = UnitGrid::new(Torus::unit(), 10);
        assert_eq!(g.len(), 100);
        assert!((g.spacing() - 0.1).abs() < 1e-12);
        assert_eq!(g.iter().count(), 100);
    }

    #[test]
    fn grid_points_inside_domain() {
        let t = Torus::unit();
        let g = UnitGrid::new(t, 7);
        for p in g.iter() {
            assert!(t.contains(p), "{p}");
        }
    }

    #[test]
    fn grid_points_are_cell_centers() {
        let g = UnitGrid::new(Torus::unit(), 2);
        let pts: Vec<_> = g.iter().collect();
        assert_eq!(pts.len(), 4);
        assert!((pts[0].x - 0.25).abs() < 1e-12 && (pts[0].y - 0.25).abs() < 1e-12);
        assert!((pts[3].x - 0.75).abs() < 1e-12 && (pts[3].y - 0.75).abs() < 1e-12);
    }

    #[test]
    fn with_at_least_meets_request() {
        for m in [1, 2, 5, 99, 100, 101, 6907] {
            let g = UnitGrid::with_at_least(Torus::unit(), m);
            assert!(g.len() >= m, "m={m} -> {}", g.len());
            let k = g.side_count();
            assert!(
                k == 1 || (k - 1) * (k - 1) < m,
                "grid not minimal for m={m}"
            );
        }
    }

    #[test]
    fn grid_nearest_neighbour_distance_is_spacing() {
        let t = Torus::unit();
        let g = UnitGrid::new(t, 5);
        let p0 = g.point(0);
        let p1 = g.point(1);
        assert!((t.distance(p0, p1) - g.spacing()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_panics() {
        let _ = UnitGrid::new(Torus::unit(), 0);
    }

    #[test]
    fn square_lattice_count_and_domain() {
        let t = Torus::unit();
        let pts = square_lattice(&t, 0.25);
        assert_eq!(pts.len(), 16);
        for p in &pts {
            assert!(t.contains(*p));
        }
    }

    #[test]
    fn square_lattice_rounds_spacing_down() {
        let t = Torus::unit();
        // 0.3 doesn't divide 1; expect ceil(1/0.3)=4 columns at step 0.25.
        let pts = square_lattice(&t, 0.3);
        assert_eq!(pts.len(), 16);
    }

    #[test]
    fn triangular_lattice_in_domain_and_offset_rows() {
        let t = Torus::unit();
        let pts = triangular_lattice(&t, 0.2);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(t.contains(*p), "{p}");
        }
        // Rows alternate between offset 0 and dx/2: x of first point of two
        // consecutive rows must differ.
        let cols = (1.0f64 / 0.2).ceil() as usize;
        assert!((pts[0].x - pts[cols].x).abs() > 1e-6);
    }

    #[test]
    fn triangular_lattice_denser_spacing_gives_more_points() {
        let t = Torus::unit();
        let coarse = triangular_lattice(&t, 0.25).len();
        let fine = triangular_lattice(&t, 0.1).len();
        assert!(fine > coarse);
    }

    #[test]
    fn triangular_lattice_nearest_neighbour_close_to_spacing() {
        let t = Torus::unit();
        let spacing = 0.2;
        let pts = triangular_lattice(&t, spacing);
        // Nearest-neighbour distance should be within 25% of the requested
        // spacing despite the seam-rounding adjustments.
        let p = pts[0];
        let mut best = f64::INFINITY;
        for q in pts.iter().skip(1) {
            best = best.min(t.distance(p, *q));
        }
        assert!(
            (best - spacing).abs() / spacing < 0.25,
            "nearest neighbour {best} vs spacing {spacing}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_spacing_panics() {
        let _ = square_lattice(&Torus::unit(), 2.0);
    }
}
