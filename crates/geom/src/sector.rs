//! Circular sectors — the binary sector sensing region.
//!
//! A camera sensor in the paper's model (§II-A) "can sense perfectly in a
//! sector of radius `r` and angle `φ`, but will not sense outside the
//! sector". [`Sector`] is that region, evaluated on a torus.

use crate::angle::{Angle, ANGLE_EPS};
use crate::point::Point;
use crate::torus::Torus;
use std::f64::consts::TAU;
use std::fmt;

/// A closed circular sector with apex `apex`, radius `radius`, facing
/// direction `facing` (the angular bisector — the paper's orientation
/// `f⃗`), and full angular width `width` (the paper's angle of view `φ`).
///
/// Membership is evaluated with torus geometry, so a sector near an edge
/// of the operational region wraps around.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Angle, Point, Sector, Torus};
/// use std::f64::consts::PI;
///
/// let t = Torus::unit();
/// let s = Sector::new(Point::new(0.5, 0.5), 0.2, Angle::ZERO, PI / 2.0);
/// assert!(s.contains(&t, Point::new(0.6, 0.5)));   // straight ahead
/// assert!(!s.contains(&t, Point::new(0.4, 0.5)));  // behind
/// assert!(!s.contains(&t, Point::new(0.9, 0.5)));  // too far
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sector {
    apex: Point,
    radius: f64,
    facing: Angle,
    width: f64,
}

impl Sector {
    /// Creates a sector.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not finite and strictly positive, or if
    /// `width` is not in `(0, 2π]`.
    #[must_use]
    pub fn new(apex: Point, radius: f64, facing: Angle, width: f64) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "sector radius must be finite and positive, got {radius}"
        );
        assert!(
            width.is_finite() && width > 0.0 && width <= TAU + ANGLE_EPS,
            "sector width must lie in (0, 2π], got {width}"
        );
        Sector {
            apex,
            radius,
            facing,
            width: width.min(TAU),
        }
    }

    /// The apex (camera location).
    #[must_use]
    pub fn apex(&self) -> Point {
        self.apex
    }

    /// The sensing radius.
    #[must_use]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The facing direction (angular bisector of the sector).
    #[must_use]
    pub fn facing(&self) -> Angle {
        self.facing
    }

    /// The full angular width `φ`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The sector's area, `φ r² / 2` — the paper's *sensing area* `s`,
    /// which §VI-A shows is the decisive sensing parameter under uniform
    /// deployment.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width * self.radius * self.radius / 2.0
    }

    /// Whether the sector is a full disc (`φ = 2π`), i.e. an
    /// omnidirectional (scalar) sensor.
    #[must_use]
    pub fn is_disc(&self) -> bool {
        self.width >= TAU - ANGLE_EPS
    }

    /// Whether point `p` lies in the closed sector, with distances and
    /// directions taken on `torus`.
    ///
    /// A point coincident with the apex is considered contained (it is at
    /// distance 0, inside the closed region).
    #[must_use]
    pub fn contains(&self, torus: &Torus, p: Point) -> bool {
        let (dx, dy) = torus.displacement(self.apex, p);
        let dist2 = dx * dx + dy * dy;
        if dist2 > self.radius * self.radius {
            return false;
        }
        if self.is_disc() {
            return true;
        }
        match Angle::from_vector(dx, dy) {
            None => true, // coincident with the apex
            Some(dir) => self.facing.distance(dir) <= self.width / 2.0 + ANGLE_EPS,
        }
    }
}

impl fmt::Display for Sector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sector(apex={}, r={:.4}, facing={}, φ={:.4})",
            self.apex, self.radius, self.facing, self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn unit() -> Torus {
        Torus::unit()
    }

    #[test]
    fn area_formula() {
        let s = Sector::new(Point::ORIGIN, 0.2, Angle::ZERO, PI / 2.0);
        assert!((s.area() - PI / 2.0 * 0.04 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn disc_sector_area_is_pi_r_squared() {
        let s = Sector::new(Point::ORIGIN, 0.25, Angle::ZERO, TAU);
        assert!(s.is_disc());
        assert!((s.area() - PI * 0.0625).abs() < 1e-12);
    }

    #[test]
    fn contains_respects_radius() {
        let t = unit();
        let s = Sector::new(Point::new(0.5, 0.5), 0.1, Angle::ZERO, PI);
        assert!(s.contains(&t, Point::new(0.59, 0.5)));
        assert!(!s.contains(&t, Point::new(0.61, 0.5)));
    }

    #[test]
    fn contains_respects_angle() {
        let t = unit();
        // Facing +x with a 90° field of view: covers directions in [-45°, 45°].
        let s = Sector::new(Point::new(0.5, 0.5), 0.2, Angle::ZERO, PI / 2.0);
        assert!(s.contains(&t, Point::new(0.6, 0.55))); // ~26° off-axis
        assert!(!s.contains(&t, Point::new(0.55, 0.65))); // ~63° off-axis
        assert!(!s.contains(&t, Point::new(0.4, 0.5))); // behind
    }

    #[test]
    fn boundary_direction_is_contained() {
        let t = unit();
        let s = Sector::new(Point::new(0.5, 0.5), 0.2, Angle::ZERO, PI / 2.0);
        // Exactly 45° off axis, on the sector edge.
        let p = Point::new(0.5 + 0.1, 0.5 + 0.1);
        assert!(s.contains(&t, p));
    }

    #[test]
    fn apex_is_contained() {
        let t = unit();
        let s = Sector::new(Point::new(0.3, 0.3), 0.1, Angle::new(1.0), 0.5);
        assert!(s.contains(&t, Point::new(0.3, 0.3)));
    }

    #[test]
    fn wraps_around_torus_edge() {
        let t = unit();
        // Camera at the right edge facing +x sees across the seam.
        let s = Sector::new(Point::new(0.95, 0.5), 0.2, Angle::ZERO, PI / 2.0);
        assert!(s.contains(&t, Point::new(0.05, 0.5)));
        assert!(!s.contains(&t, Point::new(0.75, 0.5))); // behind, not through seam
    }

    #[test]
    fn disc_ignores_facing() {
        let t = unit();
        let s = Sector::new(Point::new(0.5, 0.5), 0.15, Angle::new(3.0), TAU);
        for k in 0..12 {
            let dir = Angle::new(k as f64 * TAU / 12.0);
            let p = t.offset(Point::new(0.5, 0.5), dir, 0.1);
            assert!(s.contains(&t, p), "direction {dir}");
        }
    }

    #[test]
    fn narrow_sector_is_selective() {
        let t = unit();
        let s = Sector::new(Point::new(0.5, 0.5), 0.3, Angle::new(PI / 2.0), 0.1);
        assert!(s.contains(&t, Point::new(0.5, 0.7)));
        assert!(!s.contains(&t, Point::new(0.52, 0.7)));
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_panics() {
        let _ = Sector::new(Point::ORIGIN, 0.0, Angle::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = Sector::new(Point::ORIGIN, 0.1, Angle::ZERO, 0.0);
    }
}
