//! The toroidal operational region.
//!
//! The paper's operational region is a unit square "supposed to be a torus
//! so that we can ignore the boundary effect" (§II-A). [`Torus`] provides
//! the wrap-around metric: displacements, distances, and directions are
//! always taken along the minimal image.

use crate::angle::Angle;
use crate::point::Point;
use std::fmt;

/// A square region of side `side` with opposite edges identified
/// (a flat torus).
///
/// All coverage geometry in this project is computed relative to a torus so
/// that asymptotic results are not polluted by boundary effects, exactly as
/// in the paper.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Point, Torus};
///
/// let t = Torus::unit();
/// // Points near opposite edges are close through the seam:
/// let a = Point::new(0.05, 0.5);
/// let b = Point::new(0.95, 0.5);
/// assert!((t.distance(a, b) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Torus {
    side: f64,
}

impl Torus {
    /// The unit torus (side 1), the paper's operational region.
    #[must_use]
    pub fn unit() -> Self {
        Torus { side: 1.0 }
    }

    /// A torus with the given side length.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not finite and strictly positive.
    #[must_use]
    pub fn with_side(side: f64) -> Self {
        assert!(
            side.is_finite() && side > 0.0,
            "torus side must be finite and positive, got {side}"
        );
        Torus { side }
    }

    /// The side length.
    #[must_use]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The area of the region.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.side * self.side
    }

    /// Half the side length — the largest unambiguous displacement along
    /// one axis, and therefore an upper bound on meaningful sensing radii.
    #[must_use]
    pub fn half_side(&self) -> f64 {
        self.side / 2.0
    }

    /// Maps a point into the fundamental domain `[0, side) × [0, side)`.
    #[must_use]
    pub fn wrap(&self, p: Point) -> Point {
        Point::new(wrap_coord(p.x, self.side), wrap_coord(p.y, self.side))
    }

    /// Whether `p` already lies in the fundamental domain.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        (0.0..self.side).contains(&p.x) && (0.0..self.side).contains(&p.y)
    }

    /// Minimal-image displacement from `a` to `b`: the shortest vector
    /// `(dx, dy)` such that `a + (dx, dy) ≡ b` on the torus. Each component
    /// lies in `[-side/2, side/2)`.
    #[must_use]
    pub fn displacement(&self, a: Point, b: Point) -> (f64, f64) {
        (
            wrap_delta(b.x - a.x, self.side),
            wrap_delta(b.y - a.y, self.side),
        )
    }

    /// Geodesic distance between `a` and `b` on the torus.
    #[must_use]
    pub fn distance(&self, a: Point, b: Point) -> f64 {
        let (dx, dy) = self.displacement(a, b);
        dx.hypot(dy)
    }

    /// Squared geodesic distance (avoids the square root in hot loops).
    #[must_use]
    pub fn distance_squared(&self, a: Point, b: Point) -> f64 {
        let (dx, dy) = self.displacement(a, b);
        dx * dx + dy * dy
    }

    /// Direction of the minimal-image vector from `a` to `b`, or `None` if
    /// the points coincide (within numeric tolerance).
    ///
    /// For a target `P` and sensor `S`, `direction(P, S)` is the paper's
    /// *viewed direction* `P→S`.
    #[must_use]
    pub fn direction(&self, a: Point, b: Point) -> Option<Angle> {
        let (dx, dy) = self.displacement(a, b);
        Angle::from_vector(dx, dy)
    }

    /// The point reached from `p` by moving `distance` in direction `dir`,
    /// wrapped into the fundamental domain.
    #[must_use]
    pub fn offset(&self, p: Point, dir: Angle, distance: f64) -> Point {
        let (ux, uy) = dir.unit_vector();
        self.wrap(p.translate(ux * distance, uy * distance))
    }

    /// Wraps a single coordinate difference into `[-side/2, side/2)` — one
    /// axis of [`displacement`](Self::displacement).
    ///
    /// Batch sweeps factor a tile's displacements per axis: wrapping each
    /// column's `Δx` and each row's `Δy` once gives every `(column, row)`
    /// pair's displacement as the wrapped pair, bit-identical to calling
    /// `displacement` point by point.
    #[must_use]
    pub fn wrap_coord_delta(&self, d: f64) -> f64 {
        wrap_delta(d, self.side)
    }
}

impl Default for Torus {
    fn default() -> Self {
        Torus::unit()
    }
}

impl fmt::Display for Torus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Torus(side={})", self.side)
    }
}

fn wrap_coord(x: f64, side: f64) -> f64 {
    let w = x.rem_euclid(side);
    if w >= side {
        0.0
    } else {
        w
    }
}

/// Wraps a coordinate difference into `[-side/2, side/2)`.
fn wrap_delta(d: f64, side: f64) -> f64 {
    let half = side / 2.0;
    let w = (d + half).rem_euclid(side) - half;
    if w >= half {
        -half
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn wrap_into_domain() {
        let t = Torus::unit();
        let p = t.wrap(Point::new(1.25, -0.25));
        assert!((p.x - 0.25).abs() < 1e-12);
        assert!((p.y - 0.75).abs() < 1e-12);
        assert!(t.contains(p));
    }

    #[test]
    fn wrap_is_idempotent() {
        let t = Torus::with_side(2.0);
        let p = t.wrap(Point::new(5.3, -7.7));
        assert_eq!(t.wrap(p), p);
    }

    #[test]
    fn distance_through_seam_is_short() {
        let t = Torus::unit();
        let a = Point::new(0.05, 0.05);
        let b = Point::new(0.95, 0.95);
        // Direct distance would be ~1.27; through the corner it's ~0.141.
        assert!((t.distance(a, b) - (0.1f64 * 0.1 + 0.1 * 0.1).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distance_within_domain_matches_euclidean() {
        let t = Torus::unit();
        let a = Point::new(0.3, 0.3);
        let b = Point::new(0.4, 0.45);
        assert!((t.distance(a, b) - a.euclidean_distance(b)).abs() < 1e-12);
    }

    #[test]
    fn max_distance_is_half_diagonal() {
        let t = Torus::unit();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.5, 0.5);
        assert!((t.distance(a, b) - 0.5f64.hypot(0.5)).abs() < 1e-12);
        // No pair can be farther.
        let c = Point::new(0.6, 0.6);
        assert!(t.distance(a, c) <= 0.5f64.hypot(0.5) + 1e-12);
    }

    #[test]
    fn displacement_components_in_half_open_range() {
        let t = Torus::unit();
        let a = Point::new(0.0, 0.0);
        for (bx, by) in [(0.5, 0.5), (0.49, 0.51), (0.999, 0.001), (0.25, 0.75)] {
            let (dx, dy) = t.displacement(a, Point::new(bx, by));
            assert!((-0.5..0.5).contains(&dx), "dx={dx}");
            assert!((-0.5..0.5).contains(&dy), "dy={dy}");
        }
    }

    #[test]
    fn direction_through_seam() {
        let t = Torus::unit();
        let p = Point::new(0.95, 0.5);
        let s = Point::new(0.05, 0.5);
        // Viewed direction from p to s points in +x through the seam.
        let dir = t.direction(p, s).unwrap();
        assert!(dir.approx_eq(Angle::ZERO), "{dir}");
    }

    #[test]
    fn direction_of_coincident_points_is_none() {
        let t = Torus::unit();
        let p = Point::new(0.5, 0.5);
        assert!(t.direction(p, p).is_none());
    }

    #[test]
    fn distance_squared_consistent() {
        let t = Torus::unit();
        let a = Point::new(0.1, 0.9);
        let b = Point::new(0.8, 0.2);
        let d = t.distance(a, b);
        assert!((t.distance_squared(a, b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn offset_roundtrip() {
        let t = Torus::unit();
        let p = Point::new(0.9, 0.9);
        let q = t.offset(p, Angle::new(PI / 4.0), 0.3);
        assert!(t.contains(q));
        assert!((t.distance(p, q) - 0.3).abs() < 1e-12);
        assert!(t.direction(p, q).unwrap().approx_eq(Angle::new(PI / 4.0)));
    }

    #[test]
    fn triangle_inequality_samples() {
        let t = Torus::unit();
        let pts = [
            Point::new(0.1, 0.2),
            Point::new(0.8, 0.9),
            Point::new(0.5, 0.01),
        ];
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c) + 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_side_panics() {
        let _ = Torus::with_side(0.0);
    }

    #[test]
    fn non_unit_side_scales() {
        let t = Torus::with_side(10.0);
        let a = Point::new(0.5, 5.0);
        let b = Point::new(9.5, 5.0);
        assert!((t.distance(a, b) - 1.0).abs() < 1e-12);
        assert_eq!(t.area(), 100.0);
        assert_eq!(t.half_side(), 5.0);
    }
}
