//! Circular arcs: contiguous ranges of directions.
//!
//! The paper's geometric conditions partition the circle around a point into
//! sectors of angular width `2θ` (necessary condition, §III) or `θ`
//! (sufficient condition, §IV); the set of *safe* facing directions around a
//! point is a union of arcs of width `2θ` centred on viewed directions.
//! [`Arc`] is the common currency for all of these.

use crate::angle::{Angle, ANGLE_EPS};
use std::f64::consts::TAU;
use std::fmt;

/// A counter-clockwise circular arc: all directions reached by rotating
/// counter-clockwise from [`start`](Arc::start) by up to
/// [`width`](Arc::width) radians.
///
/// The width is clamped to `[0, 2π]`; a width of `2π` denotes the full
/// circle. Arcs are closed: both endpoints are contained.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Angle, Arc};
/// use std::f64::consts::PI;
///
/// // An arc crossing the 0/2π seam.
/// let arc = Arc::new(Angle::new(1.75 * PI), 0.5 * PI);
/// assert!(arc.contains(Angle::new(0.0)));
/// assert!(arc.contains(Angle::new(1.9 * PI)));
/// assert!(!arc.contains(Angle::new(PI)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    start: Angle,
    width: f64,
}

impl Arc {
    /// Creates an arc starting at `start` spanning `width` radians
    /// counter-clockwise.
    ///
    /// # Panics
    ///
    /// Panics if `width` is negative, not finite, or greater than `2π`
    /// (beyond tolerance).
    #[must_use]
    pub fn new(start: Angle, width: f64) -> Self {
        assert!(
            width.is_finite() && width >= 0.0,
            "arc width must be finite and non-negative, got {width}"
        );
        assert!(
            width <= TAU + ANGLE_EPS,
            "arc width must not exceed 2π, got {width}"
        );
        Arc {
            start,
            width: width.min(TAU),
        }
    }

    /// Creates the arc of all directions within `half_width` of `center`
    /// (circular distance). This is the "safe arc" of the paper: the facing
    /// directions protected by a camera viewed from direction `center`, with
    /// effective angle `θ = half_width`.
    ///
    /// # Panics
    ///
    /// Panics if `half_width` is negative, not finite, or greater than `π`
    /// (beyond tolerance).
    #[must_use]
    pub fn centered(center: Angle, half_width: f64) -> Self {
        assert!(
            half_width.is_finite() && half_width >= 0.0,
            "half-width must be finite and non-negative, got {half_width}"
        );
        assert!(
            half_width <= TAU / 2.0 + ANGLE_EPS,
            "half-width must not exceed π, got {half_width}"
        );
        let half_width = half_width.min(TAU / 2.0);
        Arc::new(center.rotate(-half_width), 2.0 * half_width)
    }

    /// The full circle.
    #[must_use]
    pub fn full_circle() -> Self {
        Arc {
            start: Angle::ZERO,
            width: TAU,
        }
    }

    /// The arc's starting direction.
    #[must_use]
    pub fn start(&self) -> Angle {
        self.start
    }

    /// The arc's angular width in radians, in `[0, 2π]`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The arc's end direction (`start` rotated counter-clockwise by
    /// `width`).
    #[must_use]
    pub fn end(&self) -> Angle {
        self.start.rotate(self.width)
    }

    /// The direction at the middle of the arc (its angular bisector, in the
    /// paper's terminology).
    #[must_use]
    pub fn bisector(&self) -> Angle {
        self.start.rotate(self.width / 2.0)
    }

    /// Whether this arc is the whole circle (within tolerance).
    #[must_use]
    pub fn is_full_circle(&self) -> bool {
        self.width >= TAU - ANGLE_EPS
    }

    /// Whether this arc has (numerically) zero width.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.width <= ANGLE_EPS
    }

    /// Whether `angle` lies on the closed arc (with [`ANGLE_EPS`] slack at
    /// the endpoints).
    #[must_use]
    pub fn contains(&self, angle: Angle) -> bool {
        if self.is_full_circle() {
            return true;
        }
        self.start.ccw_delta(angle) <= self.width + ANGLE_EPS
    }

    /// Rotates the whole arc by `delta` radians counter-clockwise.
    #[must_use]
    pub fn rotate(&self, delta: f64) -> Self {
        Arc {
            start: self.start.rotate(delta),
            width: self.width,
        }
    }

    /// Splits the arc at the `0 / 2π` seam into linear segments over
    /// `[0, 2π]`.
    ///
    /// Returns one segment if the arc does not cross the seam, two if it
    /// does. Segments are `(lo, hi)` with `0 ≤ lo < hi ≤ 2π`. Degenerate
    /// (zero-width) arcs yield a single zero-length segment.
    #[must_use]
    pub fn to_segments(&self) -> SegmentPair {
        let s = self.start.radians();
        let e = s + self.width;
        if e <= TAU {
            SegmentPair::one(s, e)
        } else {
            SegmentPair::two((s, TAU), (0.0, e - TAU))
        }
    }
}

impl fmt::Display for Arc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} +{:.6}rad)", self.start, self.width)
    }
}

/// One or two linear segments over `[0, 2π]`, produced by
/// [`Arc::to_segments`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentPair {
    first: (f64, f64),
    second: Option<(f64, f64)>,
}

impl SegmentPair {
    fn one(lo: f64, hi: f64) -> Self {
        SegmentPair {
            first: (lo, hi),
            second: None,
        }
    }

    fn two(a: (f64, f64), b: (f64, f64)) -> Self {
        SegmentPair {
            first: a,
            second: Some(b),
        }
    }

    /// Iterates over the (one or two) segments.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        std::iter::once(self.first).chain(self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn contains_interior_and_endpoints() {
        let arc = Arc::new(Angle::new(1.0), 1.0);
        assert!(arc.contains(Angle::new(1.0)));
        assert!(arc.contains(Angle::new(1.5)));
        assert!(arc.contains(Angle::new(2.0)));
        assert!(!arc.contains(Angle::new(0.99)));
        assert!(!arc.contains(Angle::new(2.01)));
    }

    #[test]
    fn contains_across_seam() {
        let arc = Arc::new(Angle::new(TAU - 0.5), 1.0);
        assert!(arc.contains(Angle::new(0.0)));
        assert!(arc.contains(Angle::new(0.49)));
        assert!(arc.contains(Angle::new(TAU - 0.49)));
        assert!(!arc.contains(Angle::new(1.0)));
        assert!(!arc.contains(Angle::new(PI)));
    }

    #[test]
    fn full_circle_contains_everything() {
        let arc = Arc::full_circle();
        for i in 0..16 {
            assert!(arc.contains(Angle::new(i as f64 * TAU / 16.0)));
        }
        assert!(arc.is_full_circle());
    }

    #[test]
    fn degenerate_arc_contains_only_its_point() {
        let arc = Arc::new(Angle::new(2.0), 0.0);
        assert!(arc.is_degenerate());
        assert!(arc.contains(Angle::new(2.0)));
        assert!(!arc.contains(Angle::new(2.1)));
    }

    #[test]
    fn centered_symmetric_about_center() {
        let arc = Arc::centered(Angle::new(0.1), 0.5);
        assert!(arc.contains(Angle::new(0.1)));
        assert!(arc.contains(Angle::new(0.1 + 0.49)));
        assert!(arc.contains(Angle::new(TAU + 0.1 - 0.49)));
        assert!(!arc.contains(Angle::new(0.1 + 0.6)));
        assert!(arc.bisector().approx_eq(Angle::new(0.1)));
    }

    #[test]
    fn centered_with_half_width_pi_is_full_circle() {
        let arc = Arc::centered(Angle::new(1.0), PI);
        assert!(arc.is_full_circle());
    }

    #[test]
    fn bisector_of_plain_arc() {
        let arc = Arc::new(Angle::new(1.0), 2.0);
        assert!(arc.bisector().approx_eq(Angle::new(2.0)));
    }

    #[test]
    fn end_wraps() {
        let arc = Arc::new(Angle::new(TAU - 1.0), 2.0);
        assert!(arc.end().approx_eq(Angle::new(1.0)));
    }

    #[test]
    fn segments_no_wrap() {
        let arc = Arc::new(Angle::new(1.0), 2.0);
        let segs: Vec<_> = arc.to_segments().iter().collect();
        assert_eq!(segs.len(), 1);
        assert!((segs[0].0 - 1.0).abs() < 1e-12 && (segs[0].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn segments_wrap() {
        let arc = Arc::new(Angle::new(TAU - 1.0), 2.0);
        let segs: Vec<_> = arc.to_segments().iter().collect();
        assert_eq!(segs.len(), 2);
        assert!((segs[0].1 - TAU).abs() < 1e-12);
        assert!((segs[1].0).abs() < 1e-12 && (segs[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segments_total_width_preserved() {
        for (start, width) in [(0.0, 1.0), (5.0, 3.0), (6.0, TAU - 0.01), (0.0, TAU)] {
            let arc = Arc::new(Angle::new(start), width);
            let total: f64 = arc.to_segments().iter().map(|(lo, hi)| hi - lo).sum();
            assert!((total - arc.width()).abs() < 1e-12, "{arc}");
        }
    }

    #[test]
    fn rotate_preserves_width() {
        let arc = Arc::new(Angle::new(1.0), 0.7).rotate(4.0);
        assert!((arc.width() - 0.7).abs() < 1e-12);
        assert!(arc.start().approx_eq(Angle::new(5.0)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_width_panics() {
        let _ = Arc::new(Angle::ZERO, -0.1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_width_panics() {
        let _ = Arc::new(Angle::ZERO, TAU + 0.1);
    }
}
