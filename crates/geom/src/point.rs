//! Points in the plane.

use std::fmt;

/// A point in the plane, used both for camera locations and for the targets
/// whose coverage is analysed.
///
/// Coordinates are plain Euclidean; wrap-around semantics (the paper's
/// torus assumption, §II-A) live in [`crate::Torus`], which interprets
/// points modulo its side length.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        assert!(
            x.is_finite() && y.is_finite(),
            "point coordinates must be finite, got ({x}, {y})"
        );
        Point { x, y }
    }

    /// Euclidean (non-torus) distance to `other`.
    ///
    /// ```
    /// use fullview_geom::Point;
    /// let d = Point::new(0.0, 0.0).euclidean_distance(Point::new(3.0, 4.0));
    /// assert!((d - 5.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn euclidean_distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Translates by the vector `(dx, dy)`.
    #[must_use]
    pub fn translate(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_symmetric() {
        let a = Point::new(0.1, 0.9);
        let b = Point::new(0.7, 0.2);
        assert!((a.euclidean_distance(b) - b.euclidean_distance(a)).abs() < 1e-15);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(0.5, 0.5);
        assert_eq!(a.euclidean_distance(a), 0.0);
    }

    #[test]
    fn translate_adds() {
        let p = Point::new(1.0, 2.0).translate(-0.5, 0.25);
        assert_eq!(p, Point::new(0.5, 2.25));
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p: Point = (0.25, 0.75).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (0.25, 0.75));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_coordinates_panic() {
        let _ = Point::new(f64::NAN, 0.0);
    }

    #[test]
    fn display_contains_coordinates() {
        let s = format!("{}", Point::new(0.5, 0.25));
        assert!(s.contains("0.5") && s.contains("0.25"));
    }
}
