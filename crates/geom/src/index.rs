//! Torus-aware spatial hashing for neighbourhood queries.
//!
//! Area-coverage evaluation sweeps a dense grid of `m = n log n` points and,
//! for each point, needs the cameras within sensing range. A uniform
//! bucket grid over the torus turns that from `O(m·n)` into `O(m·local)`;
//! the `grid_coverage` bench quantifies the win.

use crate::point::Point;
use crate::torus::Torus;

/// A uniform bucket grid over a torus, indexing a fixed set of points
/// (typically camera locations) for radius queries.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Point, SpatialGrid, Torus};
///
/// let t = Torus::unit();
/// let pts = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9), Point::new(0.5, 0.5)];
/// let idx = SpatialGrid::build(t, &pts, 0.25);
/// // Query wraps through the torus seam: (0.95, 0.95) is near both corners.
/// let mut hits = idx.query_within(Point::new(0.95, 0.95), 0.25);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    torus: Torus,
    /// Number of cells per axis.
    cells: usize,
    /// Cell side length (`torus.side() / cells`).
    cell_len: f64,
    /// `cells × cells` buckets of point indices, row-major.
    buckets: Vec<Vec<u32>>,
    /// The indexed points (owned copy, used for the exact distance filter).
    points: Vec<Point>,
}

impl SpatialGrid {
    /// Builds an index over `points` with bucket size at least
    /// `min_cell_len` (typically the largest sensing radius, so that a
    /// radius query only needs the 3×3 neighbourhood).
    ///
    /// Points are wrapped into the torus fundamental domain before
    /// bucketing.
    ///
    /// # Panics
    ///
    /// Panics if `min_cell_len` is not finite and strictly positive, or if
    /// more than `u32::MAX` points are indexed.
    #[must_use]
    pub fn build(torus: Torus, points: &[Point], min_cell_len: f64) -> Self {
        assert!(
            min_cell_len.is_finite() && min_cell_len > 0.0,
            "cell length must be finite and positive, got {min_cell_len}"
        );
        assert!(
            points.len() <= u32::MAX as usize,
            "spatial grid supports at most u32::MAX points"
        );
        let cells = ((torus.side() / min_cell_len).floor() as usize).max(1);
        let cell_len = torus.side() / cells as f64;
        let mut buckets = vec![Vec::new(); cells * cells];
        let wrapped: Vec<Point> = points.iter().map(|&p| torus.wrap(p)).collect();
        for (i, p) in wrapped.iter().enumerate() {
            let (cx, cy) = bucket_of(p, cell_len, cells);
            buckets[cy * cells + cx].push(i as u32);
        }
        SpatialGrid {
            torus,
            cells,
            cell_len,
            buckets,
            points: wrapped,
        }
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The torus this index lives on.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// Number of cells per axis.
    #[must_use]
    pub fn cells_per_axis(&self) -> usize {
        self.cells
    }

    /// Indices of all points within torus distance `radius` of `center`
    /// (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    #[must_use]
    pub fn query_within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |i| out.push(i));
        out
    }

    /// Calls `f` with the index of every point within torus distance
    /// `radius` of `center` (inclusive). Allocation-free variant of
    /// [`query_within`](Self::query_within) for hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn for_each_within<F: FnMut(usize)>(&self, center: Point, radius: f64, mut f: F) {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        let center = self.torus.wrap(center);
        let r2 = radius * radius;
        let reach = (radius / self.cell_len).ceil() as isize + 1;
        // If the reach covers the whole grid, scan every bucket once instead
        // of double-visiting wrapped cells.
        if reach * 2 + 1 >= self.cells as isize {
            for (i, p) in self.points.iter().enumerate() {
                if self.torus.distance_squared(center, *p) <= r2 {
                    f(i);
                }
            }
            return;
        }
        let (cx, cy) = bucket_of(&center, self.cell_len, self.cells);
        let n = self.cells as isize;
        for dy in -reach..=reach {
            let by = (cy as isize + dy).rem_euclid(n) as usize;
            for dx in -reach..=reach {
                let bx = (cx as isize + dx).rem_euclid(n) as usize;
                for &i in &self.buckets[by * self.cells + bx] {
                    let p = self.points[i as usize];
                    if self.torus.distance_squared(center, p) <= r2 {
                        f(i as usize);
                    }
                }
            }
        }
    }

    /// The indexed (wrapped) point with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }
}

fn bucket_of(p: &Point, cell_len: f64, cells: usize) -> (usize, usize) {
    let cx = ((p.x / cell_len) as usize).min(cells - 1);
    let cy = ((p.y / cell_len) as usize).min(cells - 1);
    (cx, cy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(torus: &Torus, pts: &[Point], center: Point, radius: f64) -> Vec<usize> {
        pts.iter()
            .enumerate()
            .filter(|(_, p)| torus.distance(center, **p) <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index() {
        let idx = SpatialGrid::build(Torus::unit(), &[], 0.1);
        assert!(idx.is_empty());
        assert!(idx.query_within(Point::new(0.5, 0.5), 0.3).is_empty());
    }

    #[test]
    fn matches_brute_force_on_regular_points() {
        let t = Torus::unit();
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Point::new(i as f64 / 20.0, j as f64 / 20.0));
            }
        }
        let idx = SpatialGrid::build(t, &pts, 0.07);
        for &(cx, cy, r) in &[
            (0.5, 0.5, 0.1),
            (0.0, 0.0, 0.15),
            (0.97, 0.03, 0.2),
            (0.5, 0.5, 0.0),
        ] {
            let c = Point::new(cx, cy);
            let mut got = idx.query_within(c, r);
            got.sort_unstable();
            let mut want = brute_force(&t, &pts, c, r);
            want.sort_unstable();
            assert_eq!(got, want, "center ({cx},{cy}) radius {r}");
        }
    }

    #[test]
    fn query_wraps_seam() {
        let t = Torus::unit();
        let pts = vec![Point::new(0.01, 0.5), Point::new(0.99, 0.5)];
        let idx = SpatialGrid::build(t, &pts, 0.05);
        let mut hits = idx.query_within(Point::new(0.995, 0.5), 0.03);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn large_radius_falls_back_to_scan() {
        let t = Torus::unit();
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0))
            .collect();
        let idx = SpatialGrid::build(t, &pts, 0.05);
        // Radius covering the whole torus: everything is a hit.
        let hits = idx.query_within(Point::new(0.5, 0.5), 1.0);
        assert_eq!(hits.len(), 50);
    }

    #[test]
    fn unwrapped_input_points_are_wrapped() {
        let t = Torus::unit();
        let pts = vec![Point::new(1.25, -0.25)]; // wraps to (0.25, 0.75)
        let idx = SpatialGrid::build(t, &pts, 0.1);
        let hits = idx.query_within(Point::new(0.25, 0.75), 0.01);
        assert_eq!(hits, vec![0]);
        assert!((idx.point(0).x - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_finds_exact_point() {
        let t = Torus::unit();
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.5)];
        let idx = SpatialGrid::build(t, &pts, 0.1);
        assert_eq!(idx.query_within(Point::new(0.5, 0.5), 0.0), vec![0]);
    }

    #[test]
    fn for_each_within_agrees_with_query() {
        let t = Torus::unit();
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.29) % 1.0))
            .collect();
        let idx = SpatialGrid::build(t, &pts, 0.12);
        let mut via_cb = Vec::new();
        idx.for_each_within(Point::new(0.3, 0.7), 0.25, |i| via_cb.push(i));
        via_cb.sort_unstable();
        let mut via_q = idx.query_within(Point::new(0.3, 0.7), 0.25);
        via_q.sort_unstable();
        assert_eq!(via_cb, via_q);
    }

    #[test]
    fn cell_count_respects_min_len() {
        let idx = SpatialGrid::build(Torus::unit(), &[], 0.3);
        assert_eq!(idx.cells_per_axis(), 3); // floor(1/0.3)
        let idx = SpatialGrid::build(Torus::unit(), &[], 5.0);
        assert_eq!(idx.cells_per_axis(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_len_panics() {
        let _ = SpatialGrid::build(Torus::unit(), &[], 0.0);
    }
}
