//! Torus-aware spatial hashing for neighbourhood queries.
//!
//! Area-coverage evaluation sweeps a dense grid of `m = n log n` points and,
//! for each point, needs the cameras within sensing range. A uniform
//! bucket grid over the torus turns that from `O(m·n)` into `O(m·local)`;
//! the `grid_coverage` bench quantifies the win.

use crate::point::Point;
use crate::torus::Torus;

/// A uniform bucket grid over a torus, indexing a fixed set of points
/// (typically camera locations) for radius queries.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Point, SpatialGrid, Torus};
///
/// let t = Torus::unit();
/// let pts = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9), Point::new(0.5, 0.5)];
/// let idx = SpatialGrid::build(t, &pts, 0.25);
/// // Query wraps through the torus seam: (0.95, 0.95) is near both corners.
/// let mut hits = idx.query_within(Point::new(0.95, 0.95), 0.25);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    torus: Torus,
    /// Number of cells per axis.
    cells: usize,
    /// Cell side length (`torus.side() / cells`).
    cell_len: f64,
    /// `cells × cells` buckets of point indices, row-major.
    buckets: Vec<Vec<u32>>,
    /// The indexed points (owned copy, used for the exact distance filter).
    points: Vec<Point>,
}

impl SpatialGrid {
    /// Builds an index over `points` with bucket size at least
    /// `min_cell_len` (typically the largest sensing radius, so that a
    /// radius query only needs the 3×3 neighbourhood).
    ///
    /// Points are wrapped into the torus fundamental domain before
    /// bucketing.
    ///
    /// # Panics
    ///
    /// Panics if `min_cell_len` is not finite and strictly positive, or if
    /// more than `u32::MAX` points are indexed.
    #[must_use]
    pub fn build(torus: Torus, points: &[Point], min_cell_len: f64) -> Self {
        assert!(
            min_cell_len.is_finite() && min_cell_len > 0.0,
            "cell length must be finite and positive, got {min_cell_len}"
        );
        assert!(
            points.len() <= u32::MAX as usize,
            "spatial grid supports at most u32::MAX points"
        );
        let cells = ((torus.side() / min_cell_len).floor() as usize).max(1);
        let cell_len = torus.side() / cells as f64;
        let mut buckets = vec![Vec::new(); cells * cells];
        let wrapped: Vec<Point> = points.iter().map(|&p| torus.wrap(p)).collect();
        for (i, p) in wrapped.iter().enumerate() {
            let (cx, cy) = bucket_of(p, cell_len, cells);
            buckets[cy * cells + cx].push(i as u32);
        }
        SpatialGrid {
            torus,
            cells,
            cell_len,
            buckets,
            points: wrapped,
        }
    }

    /// Re-indexes the grid over a new point set, keeping the torus and
    /// cell geometry and reusing every bucket allocation.
    ///
    /// This is the cheap structural rebuild hook behind in-place network
    /// mutations (camera failure / re-positioning): the cell size was
    /// chosen for the *largest* sensing radius, and cells larger than
    /// needed preserve the 3×3-neighbourhood query property, so removing
    /// or moving points never requires re-sizing the grid.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` points are indexed.
    pub fn rebuild(&mut self, points: &[Point]) {
        assert!(
            points.len() <= u32::MAX as usize,
            "spatial grid supports at most u32::MAX points"
        );
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        let torus = self.torus;
        self.points.clear();
        self.points.extend(points.iter().map(|&p| torus.wrap(p)));
        for (i, p) in self.points.iter().enumerate() {
            let (cx, cy) = bucket_of(p, self.cell_len, self.cells);
            self.buckets[cy * self.cells + cx].push(i as u32);
        }
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The torus this index lives on.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// Number of cells per axis.
    #[must_use]
    pub fn cells_per_axis(&self) -> usize {
        self.cells
    }

    /// Indices of all points within torus distance `radius` of `center`
    /// (inclusive).
    ///
    /// **Deprecation note:** this convenience helper allocates a fresh
    /// `Vec` per call and is kept for tests and one-shot queries only.
    /// Hot loops should use [`for_each_within`](Self::for_each_within) /
    /// [`within_iter`](Self::within_iter) (allocation-free per-point
    /// paths) or the tile API ([`tile_candidates`](Self::tile_candidates),
    /// [`tiles`](Self::tiles)) that amortises the bucket walk across every
    /// query point sharing a cell.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    #[must_use]
    pub fn query_within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |i| out.push(i));
        out
    }

    /// Calls `f` with the index of every point within torus distance
    /// `radius` of `center` (inclusive). Allocation-free variant of
    /// [`query_within`](Self::query_within) for hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn for_each_within<F: FnMut(usize)>(&self, center: Point, radius: f64, mut f: F) {
        let (center, bounds) = self.query_bounds(center, radius);
        let r2 = radius * radius;
        if bounds.full_scan {
            for (i, p) in self.points.iter().enumerate() {
                if self.torus.distance_squared(center, *p) <= r2 {
                    f(i);
                }
            }
            return;
        }
        self.for_each_window_bucket(&bounds, |bucket| {
            for &i in bucket {
                let p = self.points[i as usize];
                if self.torus.distance_squared(center, p) <= r2 {
                    f(i as usize);
                }
            }
        });
    }

    /// Lazily iterates over the indices of all points within torus
    /// distance `radius` of `center` (inclusive), in bucket order.
    ///
    /// Unlike [`query_within`](Self::query_within) this allocates nothing;
    /// unlike [`for_each_within`](Self::for_each_within) it composes with
    /// iterator adapters and supports early exit.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    #[must_use]
    pub fn within_iter(&self, center: Point, radius: f64) -> WithinIter<'_> {
        let (center, bounds) = self.query_bounds(center, radius);
        WithinIter {
            grid: self,
            center,
            r2: radius * radius,
            dx: bounds.dx_lo,
            dy: bounds.dy_lo,
            bucket: [].iter(),
            scan: bounds.full_scan.then_some(0),
            bounds,
        }
    }

    /// Computes the cell neighbourhood a radius query must visit.
    ///
    /// The per-axis offset ranges are derived from the centre's position
    /// *inside* its cell, so a query with `radius ≤ cell_len` visits at
    /// most 3 (and typically 2) cells per axis instead of a symmetric
    /// worst-case window: a cell `dx` to the left can only matter when its
    /// right edge is within `radius` of the centre, i.e.
    /// `dx ≥ ⌈(fx − radius)/cell_len⌉ − 1` for in-cell offset `fx`, and
    /// symmetrically `dx ≤ ⌊(fx + radius)/cell_len⌋` on the right.
    fn query_bounds(&self, center: Point, radius: f64) -> (Point, QueryBounds) {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        let center = self.torus.wrap(center);
        let (cx, cy) = bucket_of(&center, self.cell_len, self.cells);
        let fx = center.x - cx as f64 * self.cell_len;
        let fy = center.y - cy as f64 * self.cell_len;
        let (dx_lo, dx_hi) = axis_span(fx, radius, self.cell_len);
        let (dy_lo, dy_hi) = axis_span(fy, radius, self.cell_len);
        // If either axis span wraps past the whole grid, scan every bucket
        // once instead of double-visiting wrapped cells.
        let span = (dx_hi - dx_lo + 1).max(dy_hi - dy_lo + 1);
        (
            center,
            QueryBounds {
                full_scan: span >= self.cells as isize,
                cx,
                cy,
                dx_lo,
                dx_hi,
                dy_lo,
                dy_hi,
            },
        )
    }

    /// The cell window a *tile* query must visit: the union, over every
    /// possible query point inside cell `(cx, cy)`, of that point's
    /// per-point window at the given `radius`.
    ///
    /// Per axis the union is attained at the cell edges: the left bound is
    /// a point at in-cell offset `0` ([`axis_span`] is monotone in the
    /// offset) and the right bound at offset `cell_len` (an upper bound on
    /// the supremum over the half-open cell). A superset window is safe —
    /// the exact distance filter removes false candidates — and for
    /// `radius < cell_len` it is at most the 3×3 neighbourhood (one cell
    /// wider than a single point's window can need, one narrower than a
    /// naive symmetric ±⌈r/len⌉ window at small radii).
    fn cell_window(&self, cx: usize, cy: usize, radius: f64) -> QueryBounds {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        assert!(
            cx < self.cells && cy < self.cells,
            "cell ({cx}, {cy}) out of range for {0}×{0} grid",
            self.cells
        );
        let (lo, _) = axis_span(0.0, radius, self.cell_len);
        let (_, hi) = axis_span(self.cell_len, radius, self.cell_len);
        // Cells are square, so the x and y spans coincide.
        let span = hi - lo + 1;
        QueryBounds {
            full_scan: span >= self.cells as isize,
            cx,
            cy,
            dx_lo: lo,
            dx_hi: hi,
            dy_lo: lo,
            dy_hi: hi,
        }
    }

    /// Walks every bucket of a resolved window exactly once, wrapping
    /// offsets around the torus. All scan-window consumers — per-point
    /// queries, the tile API, and the [`buckets_scanned`](Self::buckets_scanned)
    /// diagnostic — share this single walk, so the diagnostic can never
    /// drift from the real scan.
    fn for_each_window_bucket<F: FnMut(&[u32])>(&self, w: &QueryBounds, mut f: F) {
        let n = self.cells as isize;
        for dy in w.dy_lo..=w.dy_hi {
            let by = (w.cy as isize + dy).rem_euclid(n) as usize;
            for dx in w.dx_lo..=w.dx_hi {
                let bx = (w.cx as isize + dx).rem_euclid(n) as usize;
                f(&self.buckets[by * self.cells + bx]);
            }
        }
    }

    /// Number of buckets the shared walk visits for a resolved window
    /// (full scans touch the flat point list once per point instead and
    /// report every bucket).
    fn window_bucket_count(&self, w: &QueryBounds) -> usize {
        if w.full_scan {
            return self.cells * self.cells;
        }
        let mut n = 0;
        self.for_each_window_bucket(w, |_| n += 1);
        n
    }

    /// The number of buckets a query for `radius` around `center` scans —
    /// a diagnostic for tests and tuning (the contract is ≤ 9 whenever
    /// `radius ≤` the cell length; full scans report every bucket).
    ///
    /// Counted by running the same window walk the real queries use, so
    /// the diagnostic cannot drift from the actual scan.
    #[must_use]
    pub fn buckets_scanned(&self, center: Point, radius: f64) -> usize {
        let (_, b) = self.query_bounds(center, radius);
        self.window_bucket_count(&b)
    }

    /// The number of buckets [`tile_candidates`](Self::tile_candidates)
    /// scans for cell `(cx, cy)` at the given `radius` — the tile-side
    /// counterpart of [`buckets_scanned`](Self::buckets_scanned), counted
    /// by the same shared walk.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range or `radius` is negative or not
    /// finite.
    #[must_use]
    pub fn tile_buckets_scanned(&self, cx: usize, cy: usize, radius: f64) -> usize {
        self.window_bucket_count(&self.cell_window(cx, cy, radius))
    }

    /// Side length of one index cell.
    #[must_use]
    pub fn cell_len(&self) -> f64 {
        self.cell_len
    }

    /// The cell that contains `p` (after wrapping into the fundamental
    /// domain).
    #[must_use]
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let p = self.torus.wrap(p);
        bucket_of(&p, self.cell_len, self.cells)
    }

    /// Collects into `out` the indices of every point that could be within
    /// `radius` of *any* location inside cell `(cx, cy)` — the tile's
    /// shared candidate list, computed with one bucket walk instead of one
    /// per query point.
    ///
    /// The list is a superset of [`query_within`](Self::query_within) for
    /// every centre inside the cell at any radius ≤ `radius`; callers
    /// apply their own exact distance/sector filter. `out` is cleared
    /// first, so a reused scratch vector makes this allocation-free once
    /// warm. When the window covers the whole grid every index is a
    /// candidate.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range or `radius` is negative or not
    /// finite.
    pub fn tile_candidates(&self, cx: usize, cy: usize, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        let w = self.cell_window(cx, cy, radius);
        if w.full_scan {
            out.extend(0..self.points.len() as u32);
            return;
        }
        self.for_each_window_bucket(&w, |bucket| out.extend_from_slice(bucket));
    }

    /// Iterates over every cell of the index as a [`Tile`]: the cell
    /// coordinates plus the shared candidate list for queries of the given
    /// `radius` from anywhere inside the cell.
    ///
    /// Convenience wrapper over [`tile_candidates`](Self::tile_candidates);
    /// each yielded tile owns a freshly-allocated candidate vector, so hot
    /// paths that sweep repeatedly should instead drive `tile_candidates`
    /// with a reused scratch buffer (as `fullview_model`'s `TileCursor`
    /// does).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    #[must_use]
    pub fn tiles(&self, radius: f64) -> Tiles<'_> {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        Tiles {
            grid: self,
            radius,
            next: 0,
        }
    }

    /// The indexed (wrapped) point with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }
}

fn bucket_of(p: &Point, cell_len: f64, cells: usize) -> (usize, usize) {
    let cx = ((p.x / cell_len) as usize).min(cells - 1);
    let cy = ((p.y / cell_len) as usize).min(cells - 1);
    (cx, cy)
}

/// Inclusive cell-offset range `[lo, hi]` along one axis for a query with
/// the given in-cell offset `frac ∈ [0, cell_len)`.
///
/// A cell `dx ≤ 0` holds points strictly below its exclusive right edge
/// (edge points bucket rightward), so it matters iff
/// `frac − (dx+1)·cell_len < radius` ⇒ `lo = ⌊(frac − radius)/cell_len⌋`
/// (the strict inequality is exactly what `floor` gives at integer
/// quotients — the far cell's supremum is excluded). A cell `dx ≥ 0`
/// includes its left edge, so the closed inequality gives
/// `hi = ⌊(frac + radius)/cell_len⌋`; the `+1e-12` nudge keeps a
/// knife-edge rounding of an exactly-at-radius edge point on the
/// inclusive side (one extra cell at worst, never a clipped one).
fn axis_span(frac: f64, radius: f64, cell_len: f64) -> (isize, isize) {
    let lo = ((frac - radius) / cell_len).floor() as isize;
    let hi = ((frac + radius) / cell_len + 1e-12).floor() as isize;
    (lo, hi)
}

/// Resolved cell window for one radius or tile query: the inclusive
/// per-axis cell-offset ranges around an anchor cell `(cx, cy)`. Shared by
/// per-point queries ([`SpatialGrid::query_bounds`]) and the tile API
/// ([`SpatialGrid::cell_window`]), and always walked through
/// [`SpatialGrid::for_each_window_bucket`].
struct QueryBounds {
    /// Whether the window covers the whole grid (fall back to a flat scan).
    full_scan: bool,
    cx: usize,
    cy: usize,
    dx_lo: isize,
    dx_hi: isize,
    dy_lo: isize,
    dy_hi: isize,
}

/// One cell of a [`SpatialGrid`] with its shared candidate list — see
/// [`SpatialGrid::tiles`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Cell x-coordinate.
    pub cx: usize,
    /// Cell y-coordinate.
    pub cy: usize,
    /// Indices of every point that could be within the query radius of any
    /// location inside this cell (a superset; callers filter exactly).
    pub candidates: Vec<u32>,
}

/// Iterator over the tiles of a [`SpatialGrid`] — see
/// [`SpatialGrid::tiles`].
#[derive(Debug)]
pub struct Tiles<'a> {
    grid: &'a SpatialGrid,
    radius: f64,
    next: usize,
}

impl Iterator for Tiles<'_> {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        let cells = self.grid.cells;
        if self.next >= cells * cells {
            return None;
        }
        let (cx, cy) = (self.next % cells, self.next / cells);
        self.next += 1;
        let mut candidates = Vec::new();
        self.grid
            .tile_candidates(cx, cy, self.radius, &mut candidates);
        Some(Tile { cx, cy, candidates })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.grid.cells * self.grid.cells - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Tiles<'_> {}

/// Lazy radius-query iterator over point indices — see
/// [`SpatialGrid::within_iter`].
#[derive(Debug)]
pub struct WithinIter<'a> {
    grid: &'a SpatialGrid,
    /// The wrapped query centre.
    center: Point,
    r2: f64,
    bounds: QueryBounds,
    /// Current cell offsets (cell mode).
    dx: isize,
    dy: isize,
    /// Remaining entries of the current bucket (cell mode).
    bucket: std::slice::Iter<'a, u32>,
    /// `Some(next_index)` when in full-scan mode.
    scan: Option<usize>,
}

impl Iterator for WithinIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if let Some(next) = self.scan.as_mut() {
            while *next < self.grid.points.len() {
                let i = *next;
                *next += 1;
                let p = self.grid.points[i];
                if self.grid.torus.distance_squared(self.center, p) <= self.r2 {
                    return Some(i);
                }
            }
            return None;
        }
        loop {
            for &i in self.bucket.by_ref() {
                let p = self.grid.points[i as usize];
                if self.grid.torus.distance_squared(self.center, p) <= self.r2 {
                    return Some(i as usize);
                }
            }
            if self.dy > self.bounds.dy_hi {
                return None;
            }
            let n = self.grid.cells as isize;
            let by = (self.bounds.cy as isize + self.dy).rem_euclid(n) as usize;
            let bx = (self.bounds.cx as isize + self.dx).rem_euclid(n) as usize;
            self.bucket = self.grid.buckets[by * self.grid.cells + bx].iter();
            self.dx += 1;
            if self.dx > self.bounds.dx_hi {
                self.dx = self.bounds.dx_lo;
                self.dy += 1;
            }
        }
    }
}

impl std::fmt::Debug for QueryBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBounds")
            .field("full_scan", &self.full_scan)
            .field("cell", &(self.cx, self.cy))
            .field("dx", &(self.dx_lo..=self.dx_hi))
            .field("dy", &(self.dy_lo..=self.dy_hi))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(torus: &Torus, pts: &[Point], center: Point, radius: f64) -> Vec<usize> {
        pts.iter()
            .enumerate()
            .filter(|(_, p)| torus.distance(center, **p) <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index() {
        let idx = SpatialGrid::build(Torus::unit(), &[], 0.1);
        assert!(idx.is_empty());
        assert!(idx.query_within(Point::new(0.5, 0.5), 0.3).is_empty());
    }

    #[test]
    fn matches_brute_force_on_regular_points() {
        let t = Torus::unit();
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Point::new(i as f64 / 20.0, j as f64 / 20.0));
            }
        }
        let idx = SpatialGrid::build(t, &pts, 0.07);
        for &(cx, cy, r) in &[
            (0.5, 0.5, 0.1),
            (0.0, 0.0, 0.15),
            (0.97, 0.03, 0.2),
            (0.5, 0.5, 0.0),
        ] {
            let c = Point::new(cx, cy);
            let mut got = idx.query_within(c, r);
            got.sort_unstable();
            let mut want = brute_force(&t, &pts, c, r);
            want.sort_unstable();
            assert_eq!(got, want, "center ({cx},{cy}) radius {r}");
        }
    }

    #[test]
    fn query_wraps_seam() {
        let t = Torus::unit();
        let pts = vec![Point::new(0.01, 0.5), Point::new(0.99, 0.5)];
        let idx = SpatialGrid::build(t, &pts, 0.05);
        let mut hits = idx.query_within(Point::new(0.995, 0.5), 0.03);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn large_radius_falls_back_to_scan() {
        let t = Torus::unit();
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0))
            .collect();
        let idx = SpatialGrid::build(t, &pts, 0.05);
        // Radius covering the whole torus: everything is a hit.
        let hits = idx.query_within(Point::new(0.5, 0.5), 1.0);
        assert_eq!(hits.len(), 50);
    }

    #[test]
    fn unwrapped_input_points_are_wrapped() {
        let t = Torus::unit();
        let pts = vec![Point::new(1.25, -0.25)]; // wraps to (0.25, 0.75)
        let idx = SpatialGrid::build(t, &pts, 0.1);
        let hits = idx.query_within(Point::new(0.25, 0.75), 0.01);
        assert_eq!(hits, vec![0]);
        assert!((idx.point(0).x - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_finds_exact_point() {
        let t = Torus::unit();
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.5)];
        let idx = SpatialGrid::build(t, &pts, 0.1);
        assert_eq!(idx.query_within(Point::new(0.5, 0.5), 0.0), vec![0]);
    }

    #[test]
    fn for_each_within_agrees_with_query() {
        let t = Torus::unit();
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.29) % 1.0))
            .collect();
        let idx = SpatialGrid::build(t, &pts, 0.12);
        let mut via_cb = Vec::new();
        idx.for_each_within(Point::new(0.3, 0.7), 0.25, |i| via_cb.push(i));
        via_cb.sort_unstable();
        let mut via_q = idx.query_within(Point::new(0.3, 0.7), 0.25);
        via_q.sort_unstable();
        assert_eq!(via_cb, via_q);
    }

    #[test]
    fn cell_count_respects_min_len() {
        let idx = SpatialGrid::build(Torus::unit(), &[], 0.3);
        assert_eq!(idx.cells_per_axis(), 3); // floor(1/0.3)
        let idx = SpatialGrid::build(Torus::unit(), &[], 5.0);
        assert_eq!(idx.cells_per_axis(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_len_panics() {
        let _ = SpatialGrid::build(Torus::unit(), &[], 0.0);
    }

    #[test]
    fn scan_window_is_at_most_3x3_for_radius_up_to_cell() {
        // The build contract: cell_len ≥ min_cell_len, so a query with
        // radius ≤ min_cell_len must touch at most the 3×3 neighbourhood.
        let t = Torus::unit();
        let pts: Vec<Point> = (0..64)
            .map(|i| Point::new((i as f64 * 0.17) % 1.0, (i as f64 * 0.23) % 1.0))
            .collect();
        let idx = SpatialGrid::build(t, &pts, 0.1); // 10×10 cells
        for i in 0..50 {
            let c = Point::new((i as f64 * 0.093) % 1.0, (i as f64 * 0.061) % 1.0);
            for r in [0.0, 0.03, 0.07, 0.0999, 0.1] {
                let scanned = idx.buckets_scanned(c, r);
                assert!(scanned <= 9, "{scanned} buckets for r={r} at {c}");
            }
        }
        // A centre in the middle of its cell with a small radius needs
        // just that one cell.
        assert_eq!(idx.buckets_scanned(Point::new(0.55, 0.55), 0.04), 1);
    }

    #[test]
    fn tightened_window_still_matches_brute_force() {
        // Radii straddling multiples of the cell length, centres on cell
        // edges and the torus seam — the cases the asymmetric window must
        // not clip.
        let t = Torus::unit();
        let pts: Vec<Point> = (0..300)
            .map(|i| Point::new((i as f64 * 0.618_034) % 1.0, (i as f64 * 0.414_214) % 1.0))
            .collect();
        let idx = SpatialGrid::build(t, &pts, 0.08);
        for &(x, y) in &[
            (0.0, 0.0),
            (0.08, 0.16), // exactly on cell corners
            (0.999, 0.5),
            (0.5, 0.999),
            (0.321, 0.654),
        ] {
            for r in [0.0, 0.05, 0.08, 0.081, 0.16, 0.2, 0.31, 0.5] {
                let c = Point::new(x, y);
                let mut got = idx.query_within(c, r);
                got.sort_unstable();
                let mut want = brute_force(&t, &pts, c, r);
                want.sort_unstable();
                assert_eq!(got, want, "center ({x},{y}) radius {r}");
            }
        }
    }

    #[test]
    fn within_iter_agrees_with_query_and_exits_early() {
        let t = Torus::unit();
        let pts: Vec<Point> = (0..120)
            .map(|i| Point::new((i as f64 * 0.13) % 1.0, (i as f64 * 0.29) % 1.0))
            .collect();
        let idx = SpatialGrid::build(t, &pts, 0.12);
        for &(x, y, r) in &[(0.3, 0.7, 0.25), (0.01, 0.99, 0.1), (0.5, 0.5, 1.0)] {
            let c = Point::new(x, y);
            let mut lazy: Vec<usize> = idx.within_iter(c, r).collect();
            lazy.sort_unstable();
            let mut eager = idx.query_within(c, r);
            eager.sort_unstable();
            assert_eq!(lazy, eager, "center ({x},{y}) radius {r}");
        }
        // Early exit: take(1) stops after the first hit without panicking
        // or visiting everything.
        let first = idx.within_iter(Point::new(0.5, 0.5), 0.4).next();
        assert!(first.is_some());
        // An empty grid yields nothing.
        let empty = SpatialGrid::build(t, &[], 0.1);
        assert_eq!(empty.within_iter(Point::new(0.1, 0.1), 0.5).count(), 0);
    }

    /// Deterministic quasi-random point cloud shared by the tile tests.
    fn cloud(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i as f64 * 0.618_034) % 1.0, (i as f64 * 0.414_214) % 1.0))
            .collect()
    }

    #[test]
    fn tile_candidates_superset_of_any_point_query_in_cell() {
        let t = Torus::unit();
        let pts = cloud(250);
        let idx = SpatialGrid::build(t, &pts, 0.09);
        let mut scratch = Vec::new();
        for r in [0.0, 0.05, 0.09, 0.13, 0.21] {
            // Probe points all over the torus, including seams and corners.
            for i in 0..60 {
                let c = Point::new((i as f64 * 0.173) % 1.0, (i as f64 * 0.311) % 1.0);
                let (cx, cy) = idx.cell_of(c);
                idx.tile_candidates(cx, cy, r, &mut scratch);
                let tile: std::collections::HashSet<u32> = scratch.iter().copied().collect();
                for hit in idx.query_within(c, r) {
                    assert!(
                        tile.contains(&(hit as u32)),
                        "point {hit} within r={r} of {c} missing from tile ({cx},{cy})"
                    );
                }
            }
        }
    }

    #[test]
    fn tile_window_is_3x3_for_radius_up_to_cell() {
        let idx = SpatialGrid::build(Torus::unit(), &cloud(64), 0.1); // 10×10 cells
        for cx in 0..10 {
            for cy in 0..10 {
                for r in [0.0, 0.04, 0.0999] {
                    let scanned = idx.tile_buckets_scanned(cx, cy, r);
                    assert!(scanned <= 9, "{scanned} buckets for r={r} at ({cx},{cy})");
                }
                // At exactly r == cell_len the union over the whole cell
                // needs one extra column/row: 4×4.
                assert!(idx.tile_buckets_scanned(cx, cy, 0.1) <= 16);
            }
        }
        // Zero radius still needs the left/up neighbours (a query point at
        // the cell's low edge can match an edge point bucketed one cell
        // over), but never more than the 2×2 block.
        assert!(idx.tile_buckets_scanned(5, 5, 0.0) <= 4);
    }

    #[test]
    fn tile_candidates_full_scan_on_large_radius() {
        let t = Torus::unit();
        let pts = cloud(40);
        let idx = SpatialGrid::build(t, &pts, 0.05);
        let mut out = Vec::new();
        idx.tile_candidates(3, 7, 1.0, &mut out);
        assert_eq!(out.len(), 40, "whole-torus radius lists every point");
        assert_eq!(idx.tile_buckets_scanned(3, 7, 1.0), 20 * 20);
    }

    #[test]
    fn tiles_iterator_covers_every_cell_and_matches_tile_candidates() {
        let t = Torus::unit();
        let pts = cloud(30);
        let idx = SpatialGrid::build(t, &pts, 0.26); // 3×3 cells
        let tiles: Vec<Tile> = idx.tiles(0.2).collect();
        assert_eq!(tiles.len(), 9);
        assert_eq!(idx.tiles(0.2).len(), 9); // ExactSizeIterator
        let mut scratch = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for tile in &tiles {
            assert!(seen.insert((tile.cx, tile.cy)), "duplicate cell");
            idx.tile_candidates(tile.cx, tile.cy, 0.2, &mut scratch);
            assert_eq!(tile.candidates, scratch);
        }
    }

    #[test]
    fn tile_candidates_wrap_the_seam() {
        let t = Torus::unit();
        // One point on each side of the x seam.
        let pts = vec![Point::new(0.01, 0.5), Point::new(0.99, 0.5)];
        let idx = SpatialGrid::build(t, &pts, 0.1);
        let (cx, cy) = idx.cell_of(Point::new(0.005, 0.5));
        let mut out = Vec::new();
        idx.tile_candidates(cx, cy, 0.05, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1], "seam neighbour must be a candidate");
    }

    #[test]
    fn buckets_scanned_diagnostics_share_the_real_walk() {
        // Regression for the diagnostic/scan drift class of bug: both
        // `buckets_scanned` and `tile_buckets_scanned` must equal a count
        // taken by the walk the real queries perform.
        let t = Torus::unit();
        let idx = SpatialGrid::build(t, &cloud(100), 0.07);
        for i in 0..40 {
            let c = Point::new((i as f64 * 0.093) % 1.0, (i as f64 * 0.061) % 1.0);
            for r in [0.0, 0.03, 0.07, 0.071, 0.14, 0.2, 0.5] {
                let (_, w) = idx.query_bounds(c, r);
                let mut walked = 0;
                idx.for_each_window_bucket(&w, |_| walked += 1);
                let reported = idx.buckets_scanned(c, r);
                if w.full_scan {
                    assert_eq!(reported, idx.cells_per_axis() * idx.cells_per_axis());
                } else {
                    assert_eq!(reported, walked, "drift at {c} r={r}");
                }
                let (cx, cy) = idx.cell_of(c);
                let tw = idx.cell_window(cx, cy, r);
                let mut tile_walked = 0;
                idx.for_each_window_bucket(&tw, |_| tile_walked += 1);
                let tile_reported = idx.tile_buckets_scanned(cx, cy, r);
                if tw.full_scan {
                    assert_eq!(tile_reported, idx.cells_per_axis() * idx.cells_per_axis());
                } else {
                    assert_eq!(
                        tile_reported, tile_walked,
                        "tile drift at ({cx},{cy}) r={r}"
                    );
                }
                // The tile window contains the per-point window.
                assert!(reported <= tile_reported.max(reported), "sanity");
                if !w.full_scan && !tw.full_scan {
                    assert!(
                        tw.dx_lo <= w.dx_lo
                            && tw.dx_hi >= w.dx_hi
                            && tw.dy_lo <= w.dy_lo
                            && tw.dy_hi >= w.dy_hi,
                        "tile window must contain the per-point window at {c} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let t = Torus::unit();
        let pts: Vec<Point> = (0..40)
            .map(|i| {
                Point::new(
                    (i as f64 * 0.618_033_98) % 1.0,
                    (i as f64 * 0.414_213_56) % 1.0,
                )
            })
            .collect();
        let mut idx = SpatialGrid::build(t, &pts, 0.2);
        // Drop every third point and move the rest slightly (wrapping).
        let mutated: Vec<Point> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, p)| Point::new(p.x + 1.05, p.y - 0.95))
            .collect();
        idx.rebuild(&mutated);
        let fresh = SpatialGrid::build(t, &mutated, 0.2);
        assert_eq!(idx.len(), fresh.len());
        assert_eq!(idx.cells_per_axis(), fresh.cells_per_axis());
        for j in 0..25 {
            let c = Point::new((j as f64 * 0.7548) % 1.0, (j as f64 * 0.5698) % 1.0);
            for r in [0.0, 0.1, 0.2, 0.35] {
                let mut a = idx.query_within(c, r);
                let mut b = fresh.query_within(c, r);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "query at {c} r={r}");
            }
        }
        // Rebuild to empty and back is fine.
        idx.rebuild(&[]);
        assert!(idx.is_empty());
        idx.rebuild(&pts);
        assert_eq!(idx.len(), pts.len());
    }
}
