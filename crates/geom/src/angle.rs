//! Angles on the unit circle.
//!
//! Full-view coverage analysis is, at its heart, reasoning about *directions*:
//! the facing direction of an object, the viewed direction `P→S` towards a
//! camera, and camera orientations. [`Angle`] is a newtype over `f64` radians
//! that is always kept normalized to `[0, 2π)`, so that circular arithmetic
//! (wrap-around distance, counter-clockwise deltas, arc membership) is
//! well-defined and cheap.

use std::f64::consts::{PI, TAU};
use std::fmt;

/// Absolute tolerance used for angular comparisons throughout the crate.
///
/// Directions are derived from `atan2` of coordinate differences, so an
/// epsilon a few orders of magnitude above `f64::EPSILON` absorbs the
/// round-trip error without ever being visible at the scale of effective
/// angles (`θ ≥ 0.01π` in all practical configurations).
pub const ANGLE_EPS: f64 = 1e-9;

/// A direction on the unit circle, normalized to `[0, 2π)` radians.
///
/// `Angle` is a *point* on the circle, not a rotation amount; rotation
/// amounts (widths, deltas) are plain `f64` radians. This distinction keeps
/// signatures honest: an [`crate::Arc`] has an `Angle` start and an `f64`
/// width.
///
/// # Examples
///
/// ```
/// use fullview_geom::Angle;
/// use std::f64::consts::PI;
///
/// let a = Angle::new(0.25 * PI);
/// let b = Angle::new(-0.25 * PI); // normalized to 1.75π
/// assert!((b.radians() - 1.75 * PI).abs() < 1e-12);
/// // Circular distance wraps: the short way round is π/2, not 3π/2.
/// assert!((a.distance(b) - 0.5 * PI).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Angle(f64);

impl Angle {
    /// The zero direction (positive x-axis).
    pub const ZERO: Angle = Angle(0.0);

    /// Creates an angle from radians, normalizing into `[0, 2π)`.
    ///
    /// # Panics
    ///
    /// Panics if `radians` is not finite.
    #[must_use]
    pub fn new(radians: f64) -> Self {
        assert!(radians.is_finite(), "angle must be finite, got {radians}");
        Angle(normalize_radians(radians))
    }

    /// Creates an angle from degrees, normalizing into `[0°, 360°)`.
    ///
    /// ```
    /// use fullview_geom::Angle;
    /// assert!((Angle::from_degrees(450.0).degrees() - 90.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn from_degrees(degrees: f64) -> Self {
        Angle::new(degrees.to_radians())
    }

    /// Direction of the vector `(dx, dy)`.
    ///
    /// Returns `None` for the zero vector (and for sub-epsilon vectors,
    /// whose direction would be numerically meaningless).
    ///
    /// ```
    /// use fullview_geom::Angle;
    /// use std::f64::consts::PI;
    /// let up = Angle::from_vector(0.0, 1.0).unwrap();
    /// assert!((up.radians() - PI / 2.0).abs() < 1e-12);
    /// assert!(Angle::from_vector(0.0, 0.0).is_none());
    /// ```
    #[must_use]
    pub fn from_vector(dx: f64, dy: f64) -> Option<Self> {
        if dx.hypot(dy) < ANGLE_EPS {
            None
        } else {
            Some(Angle::new(dy.atan2(dx)))
        }
    }

    /// The normalized value in radians, guaranteed to lie in `[0, 2π)`.
    #[must_use]
    pub fn radians(self) -> f64 {
        self.0
    }

    /// The normalized value in degrees, in `[0°, 360°)`.
    #[must_use]
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Circular (geodesic) distance to `other`, in `[0, π]`.
    ///
    /// This is the quantity written `∠(d⃗, P⃗S)` in the paper: the smaller of
    /// the two arcs between the directions.
    #[must_use]
    pub fn distance(self, other: Angle) -> f64 {
        let d = (self.0 - other.0).abs();
        d.min(TAU - d)
    }

    /// Counter-clockwise rotation from `self` to `other`, in `[0, 2π)`.
    ///
    /// ```
    /// use fullview_geom::Angle;
    /// use std::f64::consts::PI;
    /// let a = Angle::new(1.75 * PI);
    /// let b = Angle::new(0.25 * PI);
    /// assert!((a.ccw_delta(b) - 0.5 * PI).abs() < 1e-12);
    /// assert!((b.ccw_delta(a) - 1.5 * PI).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn ccw_delta(self, other: Angle) -> f64 {
        let d = other.0 - self.0;
        if d < 0.0 {
            d + TAU
        } else {
            d
        }
    }

    /// Rotates by `delta` radians (positive = counter-clockwise),
    /// re-normalizing the result.
    #[must_use]
    pub fn rotate(self, delta: f64) -> Self {
        Angle::new(self.0 + delta)
    }

    /// The diametrically opposite direction.
    #[must_use]
    pub fn opposite(self) -> Self {
        self.rotate(PI)
    }

    /// Unit vector `(cos, sin)` pointing in this direction.
    #[must_use]
    pub fn unit_vector(self) -> (f64, f64) {
        (self.0.cos(), self.0.sin())
    }

    /// Whether this angle equals `other` within [`ANGLE_EPS`] circular
    /// distance (so `2π − ε` and `ε/2` compare equal).
    #[must_use]
    pub fn approx_eq(self, other: Angle) -> bool {
        self.distance(other) <= ANGLE_EPS
    }

    /// Total order on the normalized representative in `[0, 2π)`.
    ///
    /// `Angle` cannot implement `Ord` honestly (the circle has no canonical
    /// order), but sorting by representative is exactly what circular-gap
    /// algorithms need; this named comparator makes that intent explicit.
    #[must_use]
    pub fn cmp_by_radians(&self, other: &Angle) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("normalized angles are always finite")
    }
}

impl Default for Angle {
    fn default() -> Self {
        Angle::ZERO
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}rad", self.0)
    }
}

impl From<Angle> for f64 {
    fn from(a: Angle) -> f64 {
        a.radians()
    }
}

/// Normalizes radians into `[0, 2π)`.
///
/// Handles values many turns away from the principal range as well as the
/// awkward `-ε` case (which `rem_euclid` may round to exactly `2π`).
#[must_use]
pub fn normalize_radians(radians: f64) -> f64 {
    let r = radians.rem_euclid(TAU);
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// Circular distance between two plain radian values, in `[0, π]`.
#[must_use]
pub fn circular_distance(a: f64, b: f64) -> f64 {
    Angle::new(a).distance(Angle::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_into_range() {
        for raw in [-10.0, -TAU, -1.0, 0.0, 1.0, TAU, 10.0, 100.0 * TAU + 0.5] {
            let a = Angle::new(raw);
            assert!(a.radians() >= 0.0 && a.radians() < TAU, "raw {raw} -> {a}");
        }
    }

    #[test]
    fn negative_epsilon_normalizes_to_zero_side() {
        let a = Angle::new(-1e-18);
        assert!(a.radians() < TAU);
        assert!(a.approx_eq(Angle::ZERO));
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = Angle::new(0.3);
        let b = Angle::new(5.9);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-15);
        assert!(a.distance(b) <= PI + 1e-15);
    }

    #[test]
    fn distance_wraps_around_zero() {
        let a = Angle::new(0.1);
        let b = Angle::new(TAU - 0.1);
        assert!((a.distance(b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero_and_to_opposite_is_pi() {
        let a = Angle::new(1.234);
        assert_eq!(a.distance(a), 0.0);
        assert!((a.distance(a.opposite()) - PI).abs() < 1e-12);
    }

    #[test]
    fn ccw_delta_roundtrip() {
        let a = Angle::new(1.0);
        let b = Angle::new(4.0);
        let d = a.ccw_delta(b);
        assert!(a.rotate(d).approx_eq(b));
        assert!((a.ccw_delta(b) + b.ccw_delta(a) - TAU).abs() < 1e-12);
    }

    #[test]
    fn ccw_delta_to_self_is_zero() {
        let a = Angle::new(2.5);
        assert_eq!(a.ccw_delta(a), 0.0);
    }

    #[test]
    fn from_vector_cardinal_directions() {
        let cases = [
            ((1.0, 0.0), 0.0),
            ((0.0, 1.0), PI / 2.0),
            ((-1.0, 0.0), PI),
            ((0.0, -1.0), 1.5 * PI),
        ];
        for ((dx, dy), expect) in cases {
            let a = Angle::from_vector(dx, dy).unwrap();
            assert!(
                (a.radians() - expect).abs() < 1e-12,
                "({dx},{dy}) -> {a}, expected {expect}"
            );
        }
    }

    #[test]
    fn from_vector_zero_is_none() {
        assert!(Angle::from_vector(0.0, 0.0).is_none());
        assert!(Angle::from_vector(1e-12, -1e-12).is_none());
    }

    #[test]
    fn unit_vector_roundtrip() {
        for i in 0..32 {
            let a = Angle::new(i as f64 * TAU / 32.0);
            let (x, y) = a.unit_vector();
            let back = Angle::from_vector(x, y).unwrap();
            assert!(a.approx_eq(back), "{a} -> ({x},{y}) -> {back}");
        }
    }

    #[test]
    fn degrees_conversion() {
        assert!((Angle::from_degrees(90.0).radians() - PI / 2.0).abs() < 1e-12);
        assert!((Angle::new(PI).degrees() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_radians() {
        let s = format!("{}", Angle::new(1.0));
        assert!(s.contains("rad"));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_panics() {
        let _ = Angle::new(f64::NAN);
    }

    #[test]
    fn sorting_by_radians_is_total_on_normalized_values() {
        let mut v = [Angle::new(3.0), Angle::new(1.0), Angle::new(6.0)];
        v.sort_by(Angle::cmp_by_radians);
        assert!(v.windows(2).all(|w| w[0].radians() <= w[1].radians()));
    }
}
