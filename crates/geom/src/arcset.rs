//! Unions of circular arcs with exact set algebra.
//!
//! The set of *safe* facing directions around a point `P` (Definition 1 of
//! the paper) is the union, over all cameras `S` covering `P`, of the arcs
//! of width `2θ` centred on the viewed directions `P→S`. `P` is full-view
//! covered exactly when that union is the whole circle. [`ArcSet`] maintains
//! such a union in normalized form and answers coverage, measure, and gap
//! queries.

use crate::angle::{Angle, ANGLE_EPS};
use crate::arc::Arc;
use std::f64::consts::TAU;
use std::fmt;

/// A set of directions on the circle, stored as a sorted union of disjoint
/// maximal arcs.
///
/// Invariants (maintained by every operation):
///
/// * internal segments live on the line `[0, 2π]`, sorted by start;
/// * segments are pairwise disjoint and separated by more than
///   [`ANGLE_EPS`]; adjacent/overlapping inserts are merged;
/// * the full circle is represented canonically by a flag, so
///   `covers_circle` is exact even after many lossy float merges.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Angle, Arc, ArcSet};
/// use std::f64::consts::PI;
///
/// let mut safe = ArcSet::new();
/// // Cameras viewed from the four cardinal directions, effective angle θ = π/4:
/// for k in 0..4 {
///     let viewed = Angle::new(k as f64 * PI / 2.0);
///     safe.insert(Arc::centered(viewed, PI / 4.0));
/// }
/// assert!(safe.covers_circle()); // 4 arcs of width π/2 tile the circle
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArcSet {
    /// Sorted disjoint segments `(lo, hi)` with `0 <= lo < hi <= 2π`.
    segments: Vec<(f64, f64)>,
    /// Canonical full-circle flag.
    full: bool,
}

impl ArcSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        ArcSet::default()
    }

    /// Creates a set already covering the whole circle.
    #[must_use]
    pub fn full_circle() -> Self {
        ArcSet {
            segments: Vec::new(),
            full: true,
        }
    }

    /// Builds a set from the arcs of width `2·half_width` centred on each
    /// direction in `centers` — the safe-direction set induced by cameras
    /// viewed from those directions with effective angle `half_width`.
    #[must_use]
    pub fn from_centered_arcs<I>(centers: I, half_width: f64) -> Self
    where
        I: IntoIterator<Item = Angle>,
    {
        let mut set = ArcSet::new();
        for c in centers {
            set.insert(Arc::centered(c, half_width));
            if set.full {
                break;
            }
        }
        set
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.full && self.segments.is_empty()
    }

    /// Whether the set covers the entire circle.
    #[must_use]
    pub fn covers_circle(&self) -> bool {
        self.full
    }

    /// Total angular measure of the set, in `[0, 2π]`.
    #[must_use]
    pub fn measure(&self) -> f64 {
        if self.full {
            TAU
        } else {
            self.segments.iter().map(|(lo, hi)| hi - lo).sum()
        }
    }

    /// Number of disjoint maximal arcs in the set.
    ///
    /// Note that an arc crossing the `0/2π` seam counts as one arc (its two
    /// internal segments are stitched back together).
    #[must_use]
    pub fn arc_count(&self) -> usize {
        if self.full {
            return 1;
        }
        let n = self.segments.len();
        if n >= 2 && self.wraps() {
            n - 1
        } else {
            n
        }
    }

    /// Whether `angle` belongs to the set.
    #[must_use]
    pub fn contains(&self, angle: Angle) -> bool {
        if self.full {
            return true;
        }
        let x = angle.radians();
        // Binary search on segment starts, then check the candidate and the
        // seam-wrapping possibility.
        let idx = self
            .segments
            .partition_point(|&(lo, _)| lo <= x + ANGLE_EPS);
        if idx > 0 {
            let (lo, hi) = self.segments[idx - 1];
            if x >= lo - ANGLE_EPS && x <= hi + ANGLE_EPS {
                return true;
            }
        }
        // A point near 0 may be covered by a segment ending at 2π.
        if let Some(&(_, hi)) = self.segments.last() {
            if hi >= TAU - ANGLE_EPS && x <= ANGLE_EPS {
                return true;
            }
        }
        false
    }

    /// Inserts `arc` into the set, merging with existing arcs.
    pub fn insert(&mut self, arc: Arc) {
        if self.full {
            return;
        }
        if arc.is_full_circle() {
            self.segments.clear();
            self.full = true;
            return;
        }
        for (lo, hi) in arc.to_segments().iter() {
            if hi - lo > 0.0 || arc.is_degenerate() {
                self.insert_segment(lo, hi);
            }
        }
        self.check_full();
    }

    /// Inserts a linear segment `(lo, hi)` on `[0, 2π]`, merging as needed.
    fn insert_segment(&mut self, lo: f64, hi: f64) {
        debug_assert!((0.0..=TAU + ANGLE_EPS).contains(&lo));
        debug_assert!(hi >= lo && hi <= TAU + ANGLE_EPS);
        let hi = hi.min(TAU);
        let lo = lo.min(TAU);

        // Find the run of existing segments that touch [lo, hi].
        let first = self
            .segments
            .partition_point(|&(_, shi)| shi < lo - ANGLE_EPS);
        let last = self
            .segments
            .partition_point(|&(slo, _)| slo <= hi + ANGLE_EPS);
        if first >= last {
            // No overlap: plain insert.
            self.segments.insert(first, (lo, hi));
            return;
        }
        let merged_lo = lo.min(self.segments[first].0);
        let merged_hi = hi.max(self.segments[last - 1].1);
        self.segments.drain(first..last);
        self.segments.insert(first, (merged_lo, merged_hi));
    }

    /// Collapses to the canonical full representation when the segments
    /// cover `[0, 2π]`.
    fn check_full(&mut self) {
        if self.segments.len() == 1 {
            let (lo, hi) = self.segments[0];
            if lo <= ANGLE_EPS && hi >= TAU - ANGLE_EPS {
                self.segments.clear();
                self.full = true;
            }
        }
    }

    /// Whether the set has segments touching both ends of the seam (i.e.
    /// contains an arc that logically wraps through 0).
    fn wraps(&self) -> bool {
        match (self.segments.first(), self.segments.last()) {
            (Some(&(first_lo, _)), Some(&(_, last_hi))) => {
                first_lo <= ANGLE_EPS && last_hi >= TAU - ANGLE_EPS
            }
            _ => false,
        }
    }

    /// The maximal arcs of the *complement* of the set — the "hole"
    /// directions in the paper's terminology (§VI-C): facing directions that
    /// remain unsafe.
    ///
    /// Returned arcs are disjoint and sorted by start; the seam-crossing gap
    /// (if any) is returned as a single wrapped arc.
    #[must_use]
    pub fn gaps(&self) -> Vec<Arc> {
        if self.full {
            return Vec::new();
        }
        if self.segments.is_empty() {
            return vec![Arc::full_circle()];
        }
        let mut gaps = Vec::with_capacity(self.segments.len() + 1);
        // Interior gaps between consecutive segments.
        for w in self.segments.windows(2) {
            let (_, hi) = w[0];
            let (lo, _) = w[1];
            if lo - hi > ANGLE_EPS {
                gaps.push(Arc::new(Angle::new(hi), lo - hi));
            }
        }
        // Seam gap: from the last segment's end, wrapping to the first
        // segment's start.
        let (first_lo, _) = self.segments[0];
        let (_, last_hi) = *self.segments.last().expect("nonempty");
        let seam_width = (TAU - last_hi) + first_lo;
        if seam_width > ANGLE_EPS {
            gaps.push(Arc::new(Angle::new(last_hi), seam_width));
        }
        gaps
    }

    /// Width of the largest gap (complement arc), or `0` if the circle is
    /// covered. The circle is covered iff this is `0`; a point fails
    /// full-view coverage iff its safe-direction set has a positive largest
    /// gap.
    #[must_use]
    pub fn largest_gap(&self) -> f64 {
        self.gaps().iter().map(Arc::width).fold(0.0, f64::max)
    }

    /// The complement set: exactly the [`gaps`](Self::gaps) as an
    /// [`ArcSet`].
    ///
    /// ```
    /// use fullview_geom::{Angle, Arc, ArcSet};
    /// let mut s = ArcSet::new();
    /// s.insert(Arc::new(Angle::new(1.0), 2.0));
    /// let c = s.complement();
    /// assert!((s.measure() + c.measure() - std::f64::consts::TAU).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn complement(&self) -> ArcSet {
        if self.full {
            return ArcSet::new();
        }
        if self.segments.is_empty() {
            return ArcSet::full_circle();
        }
        self.gaps().into_iter().collect()
    }

    /// The intersection with `other`, via De Morgan on the exact
    /// complement/union primitives.
    #[must_use]
    pub fn intersect(&self, other: &ArcSet) -> ArcSet {
        let mut union_of_complements = self.complement();
        union_of_complements.extend(other.complement().arcs());
        union_of_complements.complement()
    }

    /// Whether `other` is a subset of `self` (within tolerance):
    /// everything in `other` is also in `self`.
    #[must_use]
    pub fn contains_set(&self, other: &ArcSet) -> bool {
        let inter = self.intersect(other);
        (inter.measure() - other.measure()).abs() <= 1e-6
    }

    /// Iterates over the maximal arcs of the set (seam-crossing arcs are
    /// stitched into a single wrapped [`Arc`]).
    #[must_use]
    pub fn arcs(&self) -> Vec<Arc> {
        if self.full {
            return vec![Arc::full_circle()];
        }
        if self.segments.is_empty() {
            return Vec::new();
        }
        let mut segs = self.segments.clone();
        let mut wrapped: Option<(f64, f64)> = None;
        if self.wraps() && segs.len() >= 2 {
            let (_, first_hi) = segs.remove(0);
            let (last_lo, _) = segs.pop().expect("len >= 2");
            wrapped = Some((last_lo, first_hi + TAU));
        }
        let mut arcs: Vec<Arc> = segs
            .into_iter()
            .map(|(lo, hi)| Arc::new(Angle::new(lo), hi - lo))
            .collect();
        if let Some((lo, hi)) = wrapped {
            arcs.push(Arc::new(Angle::new(lo), hi - lo));
        }
        arcs
    }
}

impl FromIterator<Arc> for ArcSet {
    fn from_iter<I: IntoIterator<Item = Arc>>(iter: I) -> Self {
        let mut set = ArcSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<Arc> for ArcSet {
    fn extend<I: IntoIterator<Item = Arc>>(&mut self, iter: I) {
        for arc in iter {
            self.insert(arc);
            if self.full {
                break;
            }
        }
    }
}

impl fmt::Display for ArcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.full {
            return write!(f, "ArcSet(full circle)");
        }
        write!(
            f,
            "ArcSet({} arcs, measure {:.6})",
            self.arc_count(),
            self.measure()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn arc(start: f64, width: f64) -> Arc {
        Arc::new(Angle::new(start), width)
    }

    #[test]
    fn empty_set() {
        let s = ArcSet::new();
        assert!(s.is_empty());
        assert!(!s.covers_circle());
        assert_eq!(s.measure(), 0.0);
        assert_eq!(s.gaps().len(), 1);
        assert!(s.gaps()[0].is_full_circle());
        assert!((s.largest_gap() - TAU).abs() < 1e-12);
    }

    #[test]
    fn single_arc() {
        let mut s = ArcSet::new();
        s.insert(arc(1.0, 0.5));
        assert!((s.measure() - 0.5).abs() < 1e-12);
        assert!(s.contains(Angle::new(1.25)));
        assert!(!s.contains(Angle::new(0.5)));
        assert_eq!(s.arc_count(), 1);
        assert_eq!(s.gaps().len(), 1);
        assert!((s.largest_gap() - (TAU - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn disjoint_arcs_accumulate_measure() {
        let mut s = ArcSet::new();
        s.insert(arc(0.0, 0.5));
        s.insert(arc(2.0, 0.5));
        s.insert(arc(4.0, 0.5));
        assert!((s.measure() - 1.5).abs() < 1e-12);
        assert_eq!(s.arc_count(), 3);
        assert_eq!(s.gaps().len(), 3);
    }

    #[test]
    fn overlapping_arcs_merge() {
        let mut s = ArcSet::new();
        s.insert(arc(1.0, 1.0));
        s.insert(arc(1.5, 1.0));
        assert!((s.measure() - 1.5).abs() < 1e-12);
        assert_eq!(s.arc_count(), 1);
    }

    #[test]
    fn touching_arcs_merge() {
        let mut s = ArcSet::new();
        s.insert(arc(1.0, 1.0));
        s.insert(arc(2.0, 1.0));
        assert_eq!(s.arc_count(), 1);
        assert!((s.measure() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn insert_spanning_multiple_existing() {
        let mut s = ArcSet::new();
        s.insert(arc(1.0, 0.2));
        s.insert(arc(2.0, 0.2));
        s.insert(arc(3.0, 0.2));
        s.insert(arc(0.5, 3.0)); // swallows all three
        assert_eq!(s.arc_count(), 1);
        assert!((s.measure() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wrapping_arc_counts_once() {
        let mut s = ArcSet::new();
        s.insert(arc(TAU - 0.5, 1.0));
        assert_eq!(s.arc_count(), 1);
        assert!((s.measure() - 1.0).abs() < 1e-12);
        assert!(s.contains(Angle::new(0.0)));
        assert!(s.contains(Angle::new(0.4)));
        assert!(s.contains(Angle::new(TAU - 0.4)));
        assert!(!s.contains(Angle::new(1.0)));
        let arcs = s.arcs();
        assert_eq!(arcs.len(), 1);
        assert!((arcs[0].width() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cover_circle_with_tiles() {
        let mut s = ArcSet::new();
        for k in 0..8 {
            s.insert(arc(k as f64 * TAU / 8.0, TAU / 8.0));
        }
        assert!(s.covers_circle());
        assert!((s.measure() - TAU).abs() < 1e-12);
        assert!(s.gaps().is_empty());
        assert_eq!(s.largest_gap(), 0.0);
    }

    #[test]
    fn cover_circle_with_centered_arcs() {
        let centers = (0..4).map(|k| Angle::new(k as f64 * PI / 2.0));
        let s = ArcSet::from_centered_arcs(centers, PI / 4.0);
        assert!(s.covers_circle());
    }

    #[test]
    fn just_misses_full_circle() {
        let centers = (0..4).map(|k| Angle::new(k as f64 * PI / 2.0));
        // Slightly smaller half-width leaves 4 pinholes.
        let s = ArcSet::from_centered_arcs(centers, PI / 4.0 - 0.01);
        assert!(!s.covers_circle());
        assert_eq!(s.gaps().len(), 4);
        assert!((s.largest_gap() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn full_circle_arc_insert() {
        let mut s = ArcSet::new();
        s.insert(Arc::full_circle());
        assert!(s.covers_circle());
        s.insert(arc(1.0, 0.1)); // no-op
        assert!(s.covers_circle());
    }

    #[test]
    fn gap_across_seam() {
        let mut s = ArcSet::new();
        s.insert(arc(0.5, TAU - 1.0)); // covers [0.5, 2π-0.5]
        let gaps = s.gaps();
        assert_eq!(gaps.len(), 1);
        assert!((gaps[0].width() - 1.0).abs() < 1e-12);
        assert!(gaps[0].contains(Angle::ZERO));
    }

    #[test]
    fn measure_plus_gaps_is_tau() {
        let mut s = ArcSet::new();
        s.insert(arc(0.3, 0.7));
        s.insert(arc(2.0, 1.1));
        s.insert(arc(5.5, 1.0)); // wraps
        let gap_total: f64 = s.gaps().iter().map(Arc::width).sum();
        assert!((s.measure() + gap_total - TAU).abs() < 1e-9);
    }

    #[test]
    fn contains_near_seam_boundaries() {
        let mut s = ArcSet::new();
        s.insert(arc(TAU - 0.2, 0.2)); // segment ending exactly at 2π
        assert!(s.contains(Angle::new(0.0)));
        assert!(s.contains(Angle::new(TAU - 0.1)));
        assert!(!s.contains(Angle::new(0.1)));
    }

    #[test]
    fn from_iterator_collects() {
        let s: ArcSet = vec![arc(0.0, 1.0), arc(3.0, 1.0)].into_iter().collect();
        assert_eq!(s.arc_count(), 2);
    }

    #[test]
    fn degenerate_insert_is_harmless() {
        let mut s = ArcSet::new();
        s.insert(arc(1.0, 0.0));
        assert!(s.measure() <= ANGLE_EPS);
        assert!(s.contains(Angle::new(1.0)));
    }

    #[test]
    fn complement_roundtrip() {
        let mut s = ArcSet::new();
        s.insert(arc(0.5, 1.0));
        s.insert(arc(4.0, 1.5));
        let c = s.complement();
        assert!((s.measure() + c.measure() - TAU).abs() < 1e-9);
        let cc = c.complement();
        assert!((cc.measure() - s.measure()).abs() < 1e-6);
        // Complement of empty/full.
        assert!(ArcSet::new().complement().covers_circle());
        assert!(ArcSet::full_circle().complement().is_empty());
    }

    #[test]
    fn intersect_basics() {
        let a: ArcSet = vec![arc(0.0, 2.0)].into_iter().collect();
        let b: ArcSet = vec![arc(1.0, 2.0)].into_iter().collect();
        let i = a.intersect(&b);
        assert!((i.measure() - 1.0).abs() < 1e-6, "{}", i.measure());
        assert!(i.contains(Angle::new(1.5)));
        assert!(!i.contains(Angle::new(0.5)));
        assert!(!i.contains(Angle::new(2.5)));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a: ArcSet = vec![arc(0.0, 1.0)].into_iter().collect();
        let b: ArcSet = vec![arc(3.0, 1.0)].into_iter().collect();
        assert!(a.intersect(&b).measure() < 1e-6);
    }

    #[test]
    fn intersect_with_full_is_identity() {
        let a: ArcSet = vec![arc(0.3, 1.7), arc(4.0, 0.5)].into_iter().collect();
        let i = a.intersect(&ArcSet::full_circle());
        assert!((i.measure() - a.measure()).abs() < 1e-6);
    }

    #[test]
    fn contains_set_behaviour() {
        let big: ArcSet = vec![arc(0.0, 3.0)].into_iter().collect();
        let small: ArcSet = vec![arc(1.0, 1.0)].into_iter().collect();
        assert!(big.contains_set(&small));
        assert!(!small.contains_set(&big));
        assert!(ArcSet::full_circle().contains_set(&big));
    }

    #[test]
    fn display_formats() {
        assert!(format!("{}", ArcSet::full_circle()).contains("full"));
        assert!(format!("{}", ArcSet::new()).contains("0 arcs"));
    }
}
