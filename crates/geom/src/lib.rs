//! # fullview-geom
//!
//! Geometry substrate for full-view coverage analysis of camera sensor
//! networks (Wu & Wang, ICDCS 2012).
//!
//! This crate provides the primitives that every coverage predicate in the
//! reproduction reduces to:
//!
//! * [`Angle`] — normalized directions with circular distance and
//!   counter-clockwise deltas;
//! * [`Arc`] / [`ArcSet`] — circular arcs and exact unions of arcs, used to
//!   represent safe-direction sets and the sector partitions of the paper's
//!   §III/§IV constructions;
//! * [`Point`] and [`Torus`] — the toroidal unit-square operational region
//!   with minimal-image displacement, distance and direction;
//! * [`Sector`] — the binary sector sensing region of the paper's camera
//!   model;
//! * [`UnitGrid`], [`square_lattice`], [`triangular_lattice`] — the dense
//!   evaluation grid and deterministic deployment lattices;
//! * [`SpatialGrid`] — torus-aware spatial hashing for fast "cameras near
//!   this point" queries.
//!
//! # Example
//!
//! Check whether a set of viewed directions protects every facing
//! direction within effective angle `θ`:
//!
//! ```
//! use fullview_geom::{Angle, ArcSet};
//! use std::f64::consts::PI;
//!
//! let theta = PI / 3.0;
//! let viewed = [0.0f64, 1.8, 3.5, 5.2].map(Angle::new);
//! let safe = ArcSet::from_centered_arcs(viewed, theta);
//! assert!(safe.covers_circle());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod angle;
mod arc;
mod arcset;
mod index;
mod lattice;
mod point;
mod sector;
mod torus;

pub use angle::{circular_distance, normalize_radians, Angle, ANGLE_EPS};
pub use arc::{Arc, SegmentPair};
pub use arcset::ArcSet;
pub use index::{SpatialGrid, Tile, Tiles, WithinIter};
pub use lattice::{square_lattice, triangular_lattice, UnitGrid};
pub use point::Point;
pub use sector::Sector;
pub use torus::Torus;
