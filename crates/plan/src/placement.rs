//! Greedy incremental camera placement.
//!
//! The complement of the paper's random-deployment analysis: when every
//! mounting point is accessible, how few cameras of a given model can
//! full-view cover the region? The greedy placer repeatedly adds the
//! camera (position × orientation from a candidate set) with the best
//! marginal objective gain, stopping at full coverage, at the budget, or
//! when no candidate helps. Greedy set-cover style placement carries the
//! usual `(1 − 1/e)`-flavoured guarantees and, in practice here, lands
//! within a small factor of the lattice constructions of §VII-C.

use crate::objective::{Evaluation, Objective};
use fullview_core::EffectiveAngle;
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
use std::f64::consts::TAU;
use std::fmt;

/// Configuration for [`greedy_place`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyPlacer {
    /// Camera model to place.
    pub spec: SensorSpec,
    /// Side of the candidate-position lattice.
    pub position_candidates_side: usize,
    /// Number of candidate orientations per position.
    pub orientation_candidates: usize,
    /// Side of the evaluation grid.
    pub grid_side: usize,
    /// Maximum number of cameras to place.
    pub max_cameras: usize,
}

impl GreedyPlacer {
    /// A reasonable default configuration for the given camera model:
    /// candidate positions on a lattice comparable to the sensing radius,
    /// orientation fan matching the angle of view.
    #[must_use]
    pub fn for_spec(spec: SensorSpec) -> Self {
        let positions = ((2.0 / spec.radius()).ceil() as usize).clamp(8, 40);
        let orientations = ((TAU / spec.angle_of_view()).ceil() as usize * 2).clamp(4, 16);
        GreedyPlacer {
            spec,
            position_candidates_side: positions,
            orientation_candidates: orientations,
            grid_side: 20,
            max_cameras: 4000,
        }
    }
}

/// Outcome of a greedy placement run.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// The placed network.
    pub network: CameraNetwork,
    /// Final objective.
    pub objective: Objective,
    /// Fraction of evaluation points full-view covered.
    pub covered_fraction: f64,
    /// Whether the evaluation grid ended fully covered.
    pub complete: bool,
}

impl fmt::Display for PlacementOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "placed {} cameras, covered {:.4}{}",
            self.network.len(),
            self.covered_fraction,
            if self.complete { " (complete)" } else { "" }
        )
    }
}

/// Greedily places cameras of `placer.spec` until the evaluation grid is
/// full-view covered for `theta`, the budget runs out, or no candidate
/// improves the objective.
///
/// Deterministic: candidates are scanned in lattice/fan order and ties
/// keep the first-found best.
///
/// # Panics
///
/// Panics if any `placer` dimension is zero.
#[must_use]
pub fn greedy_place(torus: Torus, theta: EffectiveAngle, placer: GreedyPlacer) -> PlacementOutcome {
    assert!(
        placer.position_candidates_side > 0,
        "need candidate positions"
    );
    assert!(
        placer.orientation_candidates > 0,
        "need candidate orientations"
    );
    assert!(placer.grid_side > 0, "need an evaluation grid");
    let eval = Evaluation::new(torus, placer.grid_side, theta);
    let positions: Vec<Point> = UnitGrid::new(torus, placer.position_candidates_side)
        .iter()
        .collect();
    let orientations: Vec<Angle> = (0..placer.orientation_candidates)
        .map(|i| Angle::new(i as f64 * TAU / placer.orientation_candidates as f64))
        .collect();

    let mut cameras: Vec<Camera> = Vec::new();
    let mut network = CameraNetwork::new(torus, cameras.clone());
    let mut objective = eval.objective(&network);
    let target = eval.grid().len();

    while cameras.len() < placer.max_cameras && objective.covered < target {
        let mut best: Option<(Camera, Objective)> = None;
        for &pos in &positions {
            for &orientation in &orientations {
                let candidate = Camera::new(pos, orientation, placer.spec, GroupId(0));
                let mut trial = cameras.clone();
                trial.push(candidate);
                let trial_net = CameraNetwork::new(torus, trial);
                // Local evaluation around the new camera decides the gain;
                // global objective only on acceptance.
                let local_after = eval.local_objective(&trial_net, pos, placer.spec.radius());
                let local_before = eval.local_objective(&network, pos, placer.spec.radius());
                let gain = Objective {
                    covered: local_after.covered.saturating_sub(local_before.covered),
                    slack: local_after.slack - local_before.slack,
                };
                let zero = Objective {
                    covered: 0,
                    slack: 0.0,
                };
                let incumbent_gain = best.as_ref().map_or(zero, |(_, g)| *g);
                if gain.better_than(&incumbent_gain) {
                    best = Some((candidate, gain));
                }
            }
        }
        match best {
            Some((camera, _)) => {
                cameras.push(camera);
                network = CameraNetwork::new(torus, cameras.clone());
                objective = eval.objective(&network);
            }
            None => break, // no candidate helps — plateau
        }
    }

    let covered_fraction = objective.covered as f64 / target as f64;
    PlacementOutcome {
        complete: objective.covered == target,
        network,
        objective,
        covered_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn theta() -> EffectiveAngle {
        EffectiveAngle::new(PI / 2.0).unwrap()
    }

    fn small_placer(spec: SensorSpec) -> GreedyPlacer {
        GreedyPlacer {
            spec,
            position_candidates_side: 8,
            orientation_candidates: 4,
            grid_side: 8,
            max_cameras: 200,
        }
    }

    #[test]
    fn places_until_complete_with_strong_cameras() {
        let spec = SensorSpec::new(0.35, PI).unwrap();
        let outcome = greedy_place(Torus::unit(), theta(), small_placer(spec));
        assert!(outcome.complete, "{outcome}");
        assert!(
            outcome.network.len() >= 4,
            "full-view needs ≥ ⌈π/θ⌉ = 2 around each point; got {}",
            outcome.network.len()
        );
        assert_eq!(outcome.covered_fraction, 1.0);
    }

    #[test]
    fn respects_budget() {
        let spec = SensorSpec::new(0.15, PI / 2.0).unwrap();
        let mut placer = small_placer(spec);
        placer.max_cameras = 3;
        let outcome = greedy_place(Torus::unit(), theta(), placer);
        assert!(outcome.network.len() <= 3);
        assert!(!outcome.complete);
    }

    #[test]
    fn deterministic() {
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let a = greedy_place(Torus::unit(), theta(), small_placer(spec));
        let b = greedy_place(Torus::unit(), theta(), small_placer(spec));
        assert_eq!(a.network.cameras(), b.network.cameras());
    }

    #[test]
    fn coverage_monotone_during_run() {
        // Indirect check: final coverage beats the empty network and the
        // one-camera network.
        let spec = SensorSpec::new(0.3, PI).unwrap();
        let full = greedy_place(Torus::unit(), theta(), small_placer(spec));
        let mut one = small_placer(spec);
        one.max_cameras = 1;
        let single = greedy_place(Torus::unit(), theta(), one);
        assert!(full.objective.covered >= single.objective.covered);
    }

    #[test]
    fn for_spec_defaults_sane() {
        let spec = SensorSpec::new(0.1, PI / 3.0).unwrap();
        let p = GreedyPlacer::for_spec(spec);
        assert!(p.position_candidates_side >= 8);
        assert!(p.orientation_candidates >= 4);
        assert!(p.max_cameras > 0);
    }
}
