//! # fullview-plan
//!
//! Deployment planning on top of the full-view coverage checkers:
//!
//! * [`optimize_orientations`] — fixed positions, hill-climbed
//!   orientations: recovers coverage when installers can aim cameras
//!   after (random) placement;
//! * [`greedy_place`] — incremental best-gain camera placement: how few
//!   cameras of a model full-view cover the region when every mounting
//!   point is accessible (the deliberate-deployment counterpoint to the
//!   paper's random-deployment theory, complementing the §VII-C lattice
//!   constructions);
//! * [`Evaluation`] / [`Objective`] — the shared grid-based objective
//!   with an angular-slack tie-breaker.
//!
//! # Example
//!
//! ```
//! use fullview_core::EffectiveAngle;
//! use fullview_geom::Torus;
//! use fullview_model::SensorSpec;
//! use fullview_plan::{greedy_place, GreedyPlacer};
//! use std::f64::consts::PI;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let theta = EffectiveAngle::new(PI / 2.0)?;
//! let spec = SensorSpec::new(0.35, PI)?;
//! let mut placer = GreedyPlacer::for_spec(spec);
//! placer.grid_side = 8; // coarse demo resolution
//! placer.position_candidates_side = 8;
//! let outcome = greedy_place(Torus::unit(), theta, placer);
//! assert!(outcome.covered_fraction > 0.9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod objective;
mod orient;
mod placement;
mod procurement;

pub use objective::{Evaluation, Objective};
pub use orient::{optimize_orientations, OrientationOutcome, OrientationPlanner};
pub use placement::{greedy_place, GreedyPlacer, PlacementOutcome};
pub use procurement::{
    cheapest_fraction_plan, cheapest_guaranteed_plan, CatalogueEntry, ProcurementPlan,
};
