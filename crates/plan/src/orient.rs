//! Orientation optimization for fixed camera positions.
//!
//! The paper's model fixes orientations at deployment time, uniformly at
//! random (§II-A) — appropriate for air-dropped sensors. When installers
//! *can* aim cameras after placement (but not move them), coverage can
//! be recovered cheaply: this module hill-climbs over per-camera
//! orientations, evaluating each candidate on the local neighbourhood of
//! the camera only, until a full sweep yields no improvement.
//!
//! The optimizer is deterministic: cameras are visited in index order
//! and candidate orientations form a fixed fan plus the current one.

use crate::objective::{Evaluation, Objective};
use fullview_core::EffectiveAngle;
use fullview_geom::{Angle, Torus};
use fullview_model::{Camera, CameraNetwork};
use std::f64::consts::TAU;
use std::fmt;

/// Configuration for [`optimize_orientations`].
#[derive(Debug, Clone, Copy)]
pub struct OrientationPlanner {
    /// Side of the evaluation grid (objective resolution).
    pub grid_side: usize,
    /// Number of candidate orientations per camera (evenly spaced).
    pub candidates: usize,
    /// Maximum full sweeps over all cameras.
    pub max_rounds: usize,
}

impl Default for OrientationPlanner {
    fn default() -> Self {
        OrientationPlanner {
            grid_side: 24,
            candidates: 16,
            max_rounds: 4,
        }
    }
}

/// Outcome of an orientation-optimization run.
#[derive(Debug, Clone)]
pub struct OrientationOutcome {
    /// The re-oriented network.
    pub network: CameraNetwork,
    /// Objective before optimization.
    pub before: Objective,
    /// Objective after optimization.
    pub after: Objective,
    /// Number of cameras whose orientation changed.
    pub reoriented: usize,
    /// Full sweeps performed.
    pub rounds: usize,
}

impl fmt::Display for OrientationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reoriented {} cameras in {} rounds: covered {} -> {}",
            self.reoriented, self.rounds, self.before.covered, self.after.covered
        )
    }
}

/// Hill-climbs camera orientations (positions and specs fixed) to
/// maximize grid full-view coverage for effective angle `theta`.
///
/// Each camera is offered `candidates` evenly spaced orientations plus
/// its current one; a move is taken only if it strictly improves the
/// *local* objective (grid points within the camera's reach). Sweeps
/// repeat until a round makes no move or `max_rounds` is hit.
///
/// # Panics
///
/// Panics if `planner.grid_side == 0` or `planner.candidates == 0`.
#[must_use]
pub fn optimize_orientations(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    planner: OrientationPlanner,
) -> OrientationOutcome {
    assert!(planner.candidates > 0, "need at least one candidate");
    let torus: Torus = *net.torus();
    let eval = Evaluation::new(torus, planner.grid_side, theta);
    let before = eval.objective(net);

    let mut cameras: Vec<Camera> = net.cameras().to_vec();
    let mut current = CameraNetwork::new(torus, cameras.clone());
    let mut reoriented = 0usize;
    let mut rounds = 0usize;

    for _ in 0..planner.max_rounds {
        rounds += 1;
        let mut improved_this_round = false;
        for i in 0..cameras.len() {
            let cam = cameras[i];
            // Local scope: points this camera could influence.
            let reach = cam.spec().radius();
            let base = eval.local_objective(&current, cam.position(), reach);
            let mut best: Option<(Angle, Objective)> = None;
            for c in 0..planner.candidates {
                let orientation = Angle::new(c as f64 * TAU / planner.candidates as f64);
                if orientation.approx_eq(cam.orientation()) {
                    continue;
                }
                let candidate = Camera::new(cam.position(), orientation, *cam.spec(), cam.group());
                let mut trial = cameras.clone();
                trial[i] = candidate;
                let trial_net = CameraNetwork::new(torus, trial);
                let score = eval.local_objective(&trial_net, cam.position(), reach);
                let incumbent = best.as_ref().map_or(base, |(_, o)| *o);
                if score.better_than(&incumbent) {
                    best = Some((orientation, score));
                }
            }
            if let Some((orientation, _)) = best {
                cameras[i] = Camera::new(cam.position(), orientation, *cam.spec(), cam.group());
                current = CameraNetwork::new(torus, cameras.clone());
                reoriented += 1;
                improved_this_round = true;
            }
        }
        if !improved_this_round {
            break;
        }
    }

    let after = eval.objective(&current);
    OrientationOutcome {
        network: current,
        before,
        after,
        reoriented,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Point;
    use fullview_model::{GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta() -> EffectiveAngle {
        EffectiveAngle::new(PI / 2.0).unwrap()
    }

    /// A ring of cameras all facing *away* from the centre — worst-case
    /// orientations that optimization should fix.
    fn misaligned_ring() -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.25, PI / 2.0).unwrap();
        let target = Point::new(0.5, 0.5);
        let cams: Vec<Camera> = (0..6)
            .map(|k| {
                let dir = Angle::new(k as f64 * TAU / 6.0);
                // Positioned around the target but facing outward.
                Camera::new(torus.offset(target, dir, 0.12), dir, spec, GroupId(0))
            })
            .collect();
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn optimization_never_hurts() {
        let net = misaligned_ring();
        let outcome = optimize_orientations(&net, theta(), OrientationPlanner::default());
        assert!(outcome.after.covered >= outcome.before.covered, "{outcome}");
    }

    #[test]
    fn fixes_outward_facing_ring() {
        let net = misaligned_ring();
        let eval = Evaluation::new(Torus::unit(), 24, theta());
        let before = eval.covered_fraction(&net);
        let outcome = optimize_orientations(&net, theta(), OrientationPlanner::default());
        let after = eval.covered_fraction(&outcome.network);
        assert!(
            after > before + 0.02,
            "expected clear improvement: {before} -> {after}"
        );
        assert!(outcome.reoriented > 0);
    }

    #[test]
    fn positions_and_specs_preserved() {
        let net = misaligned_ring();
        let outcome = optimize_orientations(&net, theta(), OrientationPlanner::default());
        assert_eq!(outcome.network.len(), net.len());
        for (a, b) in outcome.network.cameras().iter().zip(net.cameras()) {
            assert_eq!(a.position(), b.position());
            assert_eq!(a.spec(), b.spec());
            assert_eq!(a.group(), b.group());
        }
    }

    #[test]
    fn deterministic() {
        let net = misaligned_ring();
        let a = optimize_orientations(&net, theta(), OrientationPlanner::default());
        let b = optimize_orientations(&net, theta(), OrientationPlanner::default());
        assert_eq!(a.network.cameras(), b.network.cameras());
        assert_eq!(a.reoriented, b.reoriented);
    }

    #[test]
    fn empty_network_is_noop() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let outcome = optimize_orientations(&net, theta(), OrientationPlanner::default());
        assert_eq!(outcome.network.len(), 0);
        assert_eq!(outcome.reoriented, 0);
        assert_eq!(outcome.before.covered, 0);
    }

    #[test]
    fn stops_when_no_improvement() {
        // Already-optimal single camera: no reorientation should happen
        // beyond round 1 and the loop should stop early.
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.2, 2.0 * PI).unwrap(); // omnidirectional
        let net = CameraNetwork::new(
            torus,
            vec![Camera::new(
                Point::new(0.5, 0.5),
                Angle::ZERO,
                spec,
                GroupId(0),
            )],
        );
        let outcome = optimize_orientations(&net, theta(), OrientationPlanner::default());
        // Omni camera: orientation irrelevant, objective cannot improve.
        assert_eq!(outcome.reoriented, 0);
        assert!(outcome.rounds <= 1);
    }
}
