//! Procurement optimization: pick the cheapest camera model and fleet
//! size meeting a coverage target.
//!
//! A planning department holds a catalogue of camera models with unit
//! prices and must meet one of two targets for random deployment:
//!
//! * the **Theorem-2 guarantee** — enough cameras that full-view
//!   coverage of the whole region is asymptotically assured;
//! * an **expected-fraction target** — an exact per-point full-view
//!   probability of at least `f` at a fixed fleet size.
//!
//! Both reduce to the sizing queries in `fullview_core::design`; this
//! module scans the catalogue and reports the cheapest admissible plan.

use fullview_core::{
    min_cameras_for_guarantee, prob_point_full_view_uniform, CoreError, EffectiveAngle,
};
use fullview_model::{NetworkProfile, SensorSpec};
use std::fmt;

/// A purchasable camera model.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogueEntry {
    /// Display name.
    pub name: String,
    /// Sensing parameters.
    pub spec: SensorSpec,
    /// Price per unit (any consistent currency).
    pub unit_cost: f64,
}

impl CatalogueEntry {
    /// Creates an entry.
    ///
    /// # Panics
    ///
    /// Panics if `unit_cost` is not finite and positive.
    #[must_use]
    pub fn new<S: Into<String>>(name: S, spec: SensorSpec, unit_cost: f64) -> Self {
        assert!(
            unit_cost.is_finite() && unit_cost > 0.0,
            "unit cost must be finite and positive, got {unit_cost}"
        );
        CatalogueEntry {
            name: name.into(),
            spec,
            unit_cost,
        }
    }
}

/// One costed plan: a model and a fleet size.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcurementPlan {
    /// Chosen catalogue entry.
    pub entry: CatalogueEntry,
    /// Number of units to buy.
    pub fleet_size: usize,
    /// Total cost.
    pub total_cost: f64,
}

impl fmt::Display for ProcurementPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} = {:.2}",
            self.fleet_size, self.entry.name, self.total_cost
        )
    }
}

/// The cheapest plan whose fleet reaches the Theorem-2 full-view
/// coverage guarantee for `theta` under uniform random deployment.
///
/// Returns `None` for an empty catalogue or if no model can reach the
/// guarantee within the sizing search bounds.
///
/// # Errors
///
/// Propagates [`CoreError`] from the sizing search for pathological
/// specs; models that merely fail to reach the guarantee are skipped,
/// not errors.
pub fn cheapest_guaranteed_plan(
    catalogue: &[CatalogueEntry],
    theta: EffectiveAngle,
) -> Result<Option<ProcurementPlan>, CoreError> {
    let mut best: Option<ProcurementPlan> = None;
    for entry in catalogue {
        let n = match min_cameras_for_guarantee(entry.spec.sensing_area(), theta) {
            Ok(n) => n,
            Err(CoreError::SearchFailed { .. }) => continue,
            Err(e) => return Err(e),
        };
        let total_cost = n as f64 * entry.unit_cost;
        let beats = best.as_ref().is_none_or(|b| total_cost < b.total_cost);
        if beats {
            best = Some(ProcurementPlan {
                entry: entry.clone(),
                fleet_size: n,
                total_cost,
            });
        }
    }
    Ok(best)
}

/// The cheapest plan achieving an exact per-point full-view probability
/// of at least `fraction` with a fleet of exactly `n` cameras of one
/// model — the *pick-the-model* variant when the fleet size is fixed by
/// logistics.
///
/// Returns `None` if no model reaches the target at that fleet size.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] for `fraction ∉ (0, 1)`.
pub fn cheapest_fraction_plan(
    catalogue: &[CatalogueEntry],
    n: usize,
    theta: EffectiveAngle,
    fraction: f64,
) -> Result<Option<ProcurementPlan>, CoreError> {
    if !(0.0..1.0).contains(&fraction) || fraction == 0.0 {
        return Err(CoreError::InvalidProbability {
            name: "fraction",
            value: fraction,
        });
    }
    let mut best: Option<ProcurementPlan> = None;
    for entry in catalogue {
        let profile = NetworkProfile::homogeneous(entry.spec);
        if prob_point_full_view_uniform(&profile, n, theta) < fraction {
            continue;
        }
        let total_cost = n as f64 * entry.unit_cost;
        let beats = best.as_ref().is_none_or(|b| total_cost < b.total_cost);
        if beats {
            best = Some(ProcurementPlan {
                entry: entry.clone(),
                fleet_size: n,
                total_cost,
            });
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn theta() -> EffectiveAngle {
        EffectiveAngle::new(PI / 4.0).unwrap()
    }

    fn catalogue() -> Vec<CatalogueEntry> {
        vec![
            CatalogueEntry::new(
                "cheap-short",
                SensorSpec::new(0.05, PI / 2.0).unwrap(),
                10.0,
            ),
            CatalogueEntry::new("mid", SensorSpec::new(0.10, PI / 2.0).unwrap(), 45.0),
            CatalogueEntry::new("pro", SensorSpec::new(0.15, 2.0 * PI / 3.0).unwrap(), 150.0),
        ]
    }

    #[test]
    fn guaranteed_plan_picks_cost_minimum() {
        let plan = cheapest_guaranteed_plan(&catalogue(), theta())
            .unwrap()
            .expect("catalogue is feasible");
        // Verify optimality by brute force.
        let mut best = f64::INFINITY;
        let mut best_name = String::new();
        for e in catalogue() {
            let n = min_cameras_for_guarantee(e.spec.sensing_area(), theta()).unwrap();
            let cost = n as f64 * e.unit_cost;
            if cost < best {
                best = cost;
                best_name = e.name.clone();
            }
        }
        assert_eq!(plan.entry.name, best_name);
        assert!((plan.total_cost - best).abs() < 1e-9);
    }

    #[test]
    fn guaranteed_plan_empty_catalogue() {
        assert_eq!(cheapest_guaranteed_plan(&[], theta()).unwrap(), None);
    }

    #[test]
    fn fraction_plan_respects_target() {
        let n = 1500;
        let plan = cheapest_fraction_plan(&catalogue(), n, theta(), 0.9)
            .unwrap()
            .expect("some model reaches 0.9 at n=1500");
        let profile = NetworkProfile::homogeneous(plan.entry.spec);
        assert!(prob_point_full_view_uniform(&profile, n, theta()) >= 0.9);
        assert_eq!(plan.fleet_size, n);
    }

    #[test]
    fn fraction_plan_none_when_unreachable() {
        // Ten cameras cannot deliver 99.9% full-view probability with any
        // catalogue model.
        let plan = cheapest_fraction_plan(&catalogue(), 10, theta(), 0.999).unwrap();
        assert_eq!(plan, None);
    }

    #[test]
    fn fraction_plan_rejects_bad_fraction() {
        assert!(cheapest_fraction_plan(&catalogue(), 100, theta(), 1.0).is_err());
        assert!(cheapest_fraction_plan(&catalogue(), 100, theta(), 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "unit cost")]
    fn bad_cost_panics() {
        let _ = CatalogueEntry::new("x", SensorSpec::new(0.1, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn plan_displays() {
        let plan = ProcurementPlan {
            entry: catalogue().pop().unwrap(),
            fleet_size: 42,
            total_cost: 6300.0,
        };
        let s = plan.to_string();
        assert!(s.contains("42") && s.contains("pro"));
    }
}
