//! The shared planning objective: grid-based full-view coverage with a
//! partial-credit tie-breaker.
//!
//! Planners compare candidate moves by (1) the number of evaluation-grid
//! points that are full-view covered and (2), as a tie-breaker, the total
//! *angular slack* — how far below the `2θ` limit the largest gaps sit —
//! so that moves which do not immediately flip a point still make
//! measurable progress.

use fullview_core::{sweep_grid, CoverageView, EffectiveAngle, PointAnalyzer};
use fullview_geom::{Point, Torus, UnitGrid};
use fullview_model::CameraNetwork;
use std::f64::consts::TAU;

/// A planning objective value: lexicographic (covered points, slack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// Number of evaluation points that are full-view covered.
    pub covered: usize,
    /// Total clamped slack `Σ max(0, 2π − largest_gap)` over uncovered
    /// points — higher means closer to flipping more points.
    pub slack: f64,
}

impl Objective {
    /// Whether `self` is a strict improvement over `other`.
    #[must_use]
    pub fn better_than(&self, other: &Objective) -> bool {
        self.covered > other.covered
            || (self.covered == other.covered && self.slack > other.slack + 1e-9)
    }
}

/// The evaluation grid and scoring for a planning run.
#[derive(Debug, Clone)]
pub struct Evaluation {
    grid: UnitGrid,
    theta: EffectiveAngle,
}

impl Evaluation {
    /// Creates an evaluation over a `grid_side × grid_side` grid.
    ///
    /// # Panics
    ///
    /// Panics if `grid_side == 0`.
    #[must_use]
    pub fn new(torus: Torus, grid_side: usize, theta: EffectiveAngle) -> Self {
        Evaluation {
            grid: UnitGrid::new(torus, grid_side),
            theta,
        }
    }

    /// The effective angle being planned for.
    #[must_use]
    pub fn theta(&self) -> EffectiveAngle {
        self.theta
    }

    /// The evaluation grid.
    #[must_use]
    pub fn grid(&self) -> &UnitGrid {
        &self.grid
    }

    /// Scores one analysed point: `(covered, slack_contribution)`.
    fn score_view(&self, view: &CoverageView<'_>) -> (bool, f64) {
        if view.is_full_view(self.theta) {
            (true, 0.0)
        } else {
            // Slack grows as the worst gap shrinks towards 2θ.
            let gap = view.largest_gap.min(TAU);
            (false, TAU - gap)
        }
    }

    /// Scores the whole grid (tile-coherent sweep through the shared
    /// engine; no per-point allocation).
    #[must_use]
    pub fn objective(&self, net: &CameraNetwork) -> Objective {
        let mut covered = 0usize;
        let mut slack = 0.0f64;
        sweep_grid(net, &self.grid, |_, _, view| {
            let (c, s) = self.score_view(view);
            if c {
                covered += 1;
            }
            slack += s;
        });
        Objective { covered, slack }
    }

    /// Scores only the grid points within `radius` of `center` — the
    /// local re-scoring planners use after perturbing a single camera.
    #[must_use]
    pub fn local_objective(&self, net: &CameraNetwork, center: Point, radius: f64) -> Objective {
        let torus = net.torus();
        let mut analyzer = PointAnalyzer::new();
        let mut covered = 0usize;
        let mut slack = 0.0f64;
        for p in self.grid.iter() {
            if torus.distance(center, p) > radius {
                continue;
            }
            let view = analyzer.analyze_point_into(net, p);
            let (c, s) = self.score_view(&view);
            if c {
                covered += 1;
            }
            slack += s;
        }
        Objective { covered, slack }
    }

    /// Fraction of grid points full-view covered.
    #[must_use]
    pub fn covered_fraction(&self, net: &CameraNetwork) -> f64 {
        self.objective(net).covered as f64 / self.grid.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Angle;
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta() -> EffectiveAngle {
        EffectiveAngle::new(PI / 2.0).unwrap()
    }

    #[test]
    fn objective_ordering() {
        let a = Objective {
            covered: 5,
            slack: 0.0,
        };
        let b = Objective {
            covered: 4,
            slack: 100.0,
        };
        assert!(a.better_than(&b));
        let c = Objective {
            covered: 5,
            slack: 1.0,
        };
        assert!(c.better_than(&a));
        assert!(!a.better_than(&a));
    }

    #[test]
    fn empty_network_scores_zero_coverage() {
        let eval = Evaluation::new(Torus::unit(), 8, theta());
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let obj = eval.objective(&net);
        assert_eq!(obj.covered, 0);
        assert_eq!(obj.slack, 0.0); // gap is 2π everywhere: no slack earned
        assert_eq!(eval.covered_fraction(&net), 0.0);
    }

    #[test]
    fn local_objective_subset_of_global() {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.2, PI).unwrap();
        let cams: Vec<Camera> = (0..4)
            .map(|k| {
                let dir = Angle::new(k as f64 * PI / 2.0);
                Camera::new(
                    torus.offset(Point::new(0.5, 0.5), dir, 0.1),
                    dir.opposite(),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        let net = CameraNetwork::new(torus, cams);
        let eval = Evaluation::new(torus, 12, theta());
        let global = eval.objective(&net);
        let local = eval.local_objective(&net, Point::new(0.5, 0.5), 0.25);
        assert!(local.covered <= global.covered);
        assert!(local.covered > 0, "ring should cover its centre region");
    }

    #[test]
    fn slack_increases_as_gap_narrows() {
        // One camera: slack 2π − 2π = 0... a single direction leaves gap 2π.
        // Two opposite cameras: largest gap = π, slack = π per uncovered pt.
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.45, PI).unwrap();
        let target = Point::new(0.5, 0.5);
        let one = CameraNetwork::new(
            torus,
            vec![Camera::new(
                torus.offset(target, Angle::ZERO, 0.1),
                Angle::new(PI),
                spec,
                GroupId(0),
            )],
        );
        let two = CameraNetwork::new(torus, {
            let mut v = one.cameras().to_vec();
            v.push(Camera::new(
                torus.offset(target, Angle::new(PI), 0.1),
                Angle::ZERO,
                spec,
                GroupId(0),
            ));
            v
        });
        let eval = Evaluation::new(torus, 1, EffectiveAngle::new(PI / 4.0).unwrap());
        // Single evaluation point at the centre of the square.
        let o1 = eval.objective(&one);
        let o2 = eval.objective(&two);
        assert_eq!(o1.covered, 0);
        assert_eq!(o2.covered, 0);
        assert!(o2.slack > o1.slack);
    }
}
