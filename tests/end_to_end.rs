//! End-to-end integration tests through the `fullview` facade: deploy →
//! classify → evaluate, exercising every crate together.

use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn theta() -> EffectiveAngle {
    EffectiveAngle::new(PI / 4.0).expect("valid θ")
}

fn mixed_profile(s_c: f64) -> NetworkProfile {
    NetworkProfile::builder()
        .group(
            SensorSpec::with_sensing_area(1.2, PI).expect("valid spec"),
            0.6,
        )
        .group(
            SensorSpec::with_sensing_area(0.7, PI / 2.0).expect("valid spec"),
            0.4,
        )
        .build()
        .expect("fractions sum to 1")
        .scale_to_weighted_area(s_c)
        .expect("positive area")
}

#[test]
fn generous_budget_covers_almost_everything() {
    let th = theta();
    // n = 600 keeps 1.3x the sufficient CSA within torus-feasible radii.
    let n = 600;
    let s_c = 1.3 * csa_sufficient(n, th);
    let profile = mixed_profile(s_c);
    assert_eq!(classify_csa(s_c, n, th), CsaRegime::AboveSufficient);

    let mut rng = StdRng::seed_from_u64(1);
    let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits torus");
    let grid = UnitGrid::new(Torus::unit(), 25);
    let report = evaluate_grid(&net, th, &grid, Angle::ZERO);
    assert!(
        report.full_view_fraction() > 0.95,
        "generous budget undercovered: {report}"
    );
    // Predicate ordering holds on the whole report.
    assert!(report.sufficient <= report.full_view);
    assert!(report.full_view <= report.necessary);
    assert!(report.necessary <= report.k_covered);
}

#[test]
fn starved_budget_covers_almost_nothing() {
    let th = theta();
    let n = 300;
    let s_c = 0.05 * csa_necessary(n, th);
    let profile = mixed_profile(s_c);
    assert_eq!(classify_csa(s_c, n, th), CsaRegime::BelowNecessary);

    let mut rng = StdRng::seed_from_u64(2);
    let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits torus");
    let grid = UnitGrid::new(Torus::unit(), 25);
    let report = evaluate_grid(&net, th, &grid, Angle::ZERO);
    assert!(
        report.full_view_fraction() < 0.1,
        "starved budget overcovered: {report}"
    );
    assert!(!report.all_full_view());
}

#[test]
fn per_point_queries_consistent_with_grid_report() {
    let th = theta();
    let profile = mixed_profile(0.02);
    let mut rng = StdRng::seed_from_u64(3);
    let net = deploy_uniform(Torus::unit(), &profile, 200, &mut rng).expect("fits torus");
    let grid = UnitGrid::new(Torus::unit(), 12);
    let report = evaluate_grid(&net, th, &grid, Angle::ZERO);

    let mut full_view = 0usize;
    let mut necessary = 0usize;
    let mut sufficient = 0usize;
    for p in grid.iter() {
        if is_full_view_covered(&net, p, th) {
            full_view += 1;
        }
        if meets_necessary_condition(&net, p, th, Angle::ZERO) {
            necessary += 1;
        }
        if meets_sufficient_condition(&net, p, th, Angle::ZERO) {
            sufficient += 1;
        }
    }
    assert_eq!(report.full_view, full_view);
    assert_eq!(report.necessary, necessary);
    assert_eq!(report.sufficient, sufficient);
}

#[test]
fn safe_directions_agree_with_point_verdict() {
    let th = theta();
    let profile = mixed_profile(0.03);
    let mut rng = StdRng::seed_from_u64(4);
    let net = deploy_uniform(Torus::unit(), &profile, 150, &mut rng).expect("fits torus");
    for i in 0..30 {
        let p = Point::new((i as f64 * 0.618) % 1.0, (i as f64 * 0.414) % 1.0);
        let set = safe_directions(&net, p, th);
        assert_eq!(
            set.covers_circle(),
            is_full_view_covered(&net, p, th),
            "at {p}"
        );
        // Every gap bisector must be unsafe, every covered probe safe.
        for gap in set.gaps() {
            if gap.width() > 1e-6 {
                assert!(!is_direction_safe(&net, p, th, gap.bisector()));
            }
        }
    }
}

#[test]
fn poisson_and_uniform_deployments_compose_with_theory() {
    let th = theta();
    let profile = mixed_profile(0.02);
    let mut rng = StdRng::seed_from_u64(5);
    let net = deploy_poisson(Torus::unit(), &profile, 250.0, &mut rng).expect("fits torus");
    // Theory gives a probability; the deployment gives a fraction. Both in [0,1].
    let p_n = prob_point_meets_necessary_poisson(&profile, 250.0, th);
    assert!((0.0..=1.0).contains(&p_n));
    let grid = UnitGrid::new(Torus::unit(), 15);
    let mut meets = 0usize;
    for p in grid.iter() {
        if meets_necessary_condition(&net, p, th, Angle::ZERO) {
            meets += 1;
        }
    }
    let frac = meets as f64 / grid.len() as f64;
    // Single deployment: loose agreement only (spatial correlation).
    assert!(
        (frac - p_n).abs() < 0.35,
        "single-deployment fraction {frac} wildly off theory {p_n}"
    );
}

#[test]
fn failure_injection_composes() {
    let th = theta();
    let n = 600;
    let s_c = 1.3 * csa_sufficient(n, th);
    let profile = mixed_profile(s_c);
    let mut rng = StdRng::seed_from_u64(6);
    let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits torus");
    let failed = fullview::sim::with_random_failures(&net, 0.5, &mut rng);
    assert!(failed.len() < net.len());
    let grid = UnitGrid::new(Torus::unit(), 15);
    let before = evaluate_grid(&net, th, &grid, Angle::ZERO);
    let after = evaluate_grid(&failed, th, &grid, Angle::ZERO);
    assert!(after.full_view <= before.full_view);
}

#[test]
fn barrier_is_weaker_than_full_area_coverage() {
    let th = theta();
    let n = 300;
    // A budget producing good-but-incomplete coverage.
    let profile = mixed_profile(0.6 * csa_necessary(n, th));
    let mut found_separating_case = false;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits torus");
        let report = barrier_full_view(&net, th, 16);
        let area_full = report.covered_cells == 16 * 16;
        if report.has_barrier && !area_full {
            found_separating_case = true;
        }
        // Full area coverage trivially implies a barrier.
        if area_full {
            assert!(report.has_barrier);
        }
    }
    assert!(
        found_separating_case,
        "expected at least one deployment with a barrier but incomplete area"
    );
}

#[test]
fn probabilistic_confidence_monotone() {
    let th = theta();
    let profile = mixed_profile(0.05);
    let mut rng = StdRng::seed_from_u64(8);
    let net = deploy_uniform(Torus::unit(), &profile, 250, &mut rng).expect("fits torus");
    let model = ProbabilisticModel::new(0.3, 4.0).expect("valid model");
    let grid = UnitGrid::new(Torus::unit(), 12);
    let mut prev = usize::MAX;
    for gamma in [0.0, 0.3, 0.6, 0.9] {
        let covered = grid
            .iter()
            .filter(|p| {
                is_full_view_covered_with_confidence(&net, *p, th, &model, gamma)
                    .expect("gamma valid")
            })
            .count();
        assert!(covered <= prev, "coverage grew with stricter γ = {gamma}");
        prev = covered;
    }
    // γ = 0 coincides with the plain binary check.
    let plain = grid
        .iter()
        .filter(|p| is_full_view_covered(&net, *p, th))
        .count();
    let zero_gamma = grid
        .iter()
        .filter(|p| is_full_view_covered_with_confidence(&net, *p, th, &model, 0.0).expect("valid"))
        .count();
    assert_eq!(plain, zero_gamma);
}

#[test]
fn lattice_deployment_full_view_covers_with_tight_spacing() {
    let th = theta();
    let spec = SensorSpec::new(0.15, PI / 2.0).expect("valid spec");
    let d = LatticeDeployment::covering_fan(LatticeKind::Triangular, 0.05, &spec);
    let net = d.deploy(Torus::unit(), &spec).expect("deploys");
    let grid = UnitGrid::new(Torus::unit(), 18);
    for p in grid.iter() {
        assert!(
            is_full_view_covered(&net, p, th),
            "tight lattice missed {p}"
        );
    }
}
