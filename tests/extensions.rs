//! Integration tests for the extension surface: exact probabilities,
//! k-full-view coverage, hole analysis, planning, and procurement.

use fullview::plan::{
    cheapest_guaranteed_plan, greedy_place, optimize_orientations, CatalogueEntry, GreedyPlacer,
    OrientationPlanner,
};
use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn theta() -> EffectiveAngle {
    EffectiveAngle::new(PI / 4.0).expect("valid θ")
}

fn deploy(n: usize, s_c: f64, seed: u64) -> CameraNetwork {
    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s_c, PI / 2.0).expect("valid"));
    let mut rng = StdRng::seed_from_u64(seed);
    deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits")
}

#[test]
fn exact_probability_matches_measured_fraction() {
    let th = theta();
    let n = 400;
    let s = 0.02;
    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s, PI / 2.0).expect("valid"));
    let exact = prob_point_full_view_uniform(&profile, n, th);

    let mut covered = 0usize;
    let mut total = 0usize;
    for t in 0..40u64 {
        let net = deploy(n, s, derive_seed(101, t));
        for i in 0..20 {
            let p = Point::new(
                (i as f64 * 0.618_033_98 + 0.05) % 1.0,
                (i as f64 * 0.414_213_56 + 0.65) % 1.0,
            );
            total += 1;
            if is_full_view_covered(&net, p, th) {
                covered += 1;
            }
        }
    }
    let measured = covered as f64 / total as f64;
    let sigma = (exact * (1.0 - exact) / total as f64).sqrt();
    assert!(
        (measured - exact).abs() < 5.0 * sigma + 0.02,
        "exact {exact} vs measured {measured}"
    );
}

#[test]
fn view_multiplicity_consistent_with_full_view_and_failures() {
    let th = theta();
    let net = deploy(500, 0.05, 7);
    let mut checked = 0;
    for i in 0..25 {
        let p = Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.71) % 1.0);
        let m = view_multiplicity(&net, p, th);
        assert_eq!(m >= 1, is_full_view_covered(&net, p, th), "at {p}");
        // Holds for every m: vacuously at m = 0 (k = 0), directly otherwise.
        assert!(is_k_full_view_covered(&net, p, th, m), "k = m at {p}");
        if m >= 2 {
            checked += 1;
            // Remove one arbitrary covering camera: still full-view.
            let victim = net
                .covering(p)
                .next()
                .expect("m >= 2 implies a covering camera")
                .position();
            let reduced = net.filter(|c| c.position() != victim);
            assert!(
                is_full_view_covered(&reduced, p, th),
                "multiplicity {m} but one failure broke coverage at {p}"
            );
        }
    }
    assert!(checked > 0, "fixture never reached multiplicity 2");
}

#[test]
fn holes_shrink_with_budget() {
    let th = theta();
    let sparse = find_holes(&deploy(600, 0.01, 3), th, 20);
    let dense = find_holes(&deploy(600, 0.06, 3), th, 20);
    assert!(dense.covered_fraction >= sparse.covered_fraction);
    assert!(dense.total_hole_area() <= sparse.total_hole_area() + 1e-9);
}

#[test]
fn safe_fraction_grades_partial_coverage() {
    let th = theta();
    let net = deploy(300, 0.015, 11);
    let mut sum = 0.0;
    for i in 0..30 {
        let p = Point::new((i as f64 * 0.53) % 1.0, (i as f64 * 0.29) % 1.0);
        let f = fullview::core::safe_fraction(&net, p, th);
        assert!((0.0..=1.0 + 1e-9).contains(&f));
        assert_eq!(f >= 1.0 - 1e-9, is_full_view_covered(&net, p, th), "at {p}");
        sum += f;
    }
    // Mid-budget network: average protection strictly between 0 and 1.
    let avg = sum / 30.0;
    assert!(avg > 0.2 && avg < 1.0, "average safe fraction {avg}");
}

#[test]
fn planning_pipeline_improves_random_deployment() {
    let th = theta();
    let net = deploy(250, 0.04, 5);
    let before = fullview::plan::Evaluation::new(Torus::unit(), 16, th).covered_fraction(&net);
    let outcome = optimize_orientations(
        &net,
        th,
        OrientationPlanner {
            grid_side: 16,
            candidates: 8,
            max_rounds: 2,
        },
    );
    let after =
        fullview::plan::Evaluation::new(Torus::unit(), 16, th).covered_fraction(&outcome.network);
    assert!(after >= before - 1e-9, "{before} -> {after}");
}

#[test]
fn greedy_placement_beats_random_at_equal_count() {
    let th = EffectiveAngle::new(PI / 2.0).expect("valid");
    let spec = SensorSpec::new(0.3, PI).expect("valid");
    let placer = GreedyPlacer {
        spec,
        position_candidates_side: 8,
        orientation_candidates: 4,
        grid_side: 10,
        max_cameras: 60,
    };
    let planned = greedy_place(Torus::unit(), th, placer);
    // Random deployment with the same camera count and model:
    let profile = NetworkProfile::homogeneous(spec);
    let mut rng = StdRng::seed_from_u64(13);
    let random =
        deploy_uniform(Torus::unit(), &profile, planned.network.len(), &mut rng).expect("fits");
    let eval = fullview::plan::Evaluation::new(Torus::unit(), 10, th);
    assert!(
        eval.covered_fraction(&planned.network) >= eval.covered_fraction(&random),
        "greedy {} < random {}",
        eval.covered_fraction(&planned.network),
        eval.covered_fraction(&random)
    );
}

#[test]
fn procurement_end_to_end() {
    let th = theta();
    let catalogue = vec![
        CatalogueEntry::new("A", SensorSpec::new(0.08, PI / 2.0).expect("ok"), 20.0),
        CatalogueEntry::new("B", SensorSpec::new(0.14, PI / 2.0).expect("ok"), 55.0),
    ];
    let plan = cheapest_guaranteed_plan(&catalogue, th)
        .expect("no core error")
        .expect("feasible catalogue");
    // The plan's fleet really is above the sufficient CSA.
    let entry_area = plan.entry.spec.sensing_area();
    assert!(csa_sufficient(plan.fleet_size, th) <= entry_area);
    assert!(plan.total_cost > 0.0);
}

#[test]
fn stevens_mixture_degenerate_cases_via_facade() {
    // Zero cameras never cover; θ = π needs one.
    assert_eq!(stevens_coverage_probability(0, 0.5), 0.0);
    assert_eq!(stevens_coverage_probability(1, 1.0), 1.0);
    let profile = NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.02, PI).expect("ok"));
    let p = prob_point_full_view_poisson(&profile, 0.0, theta());
    assert_eq!(p, 0.0);
}

#[test]
fn network_io_roundtrip_preserves_coverage_analysis() {
    use fullview::model::{network_from_text, network_to_text};
    let th = theta();
    let net = deploy(200, 0.03, 21);
    let text = network_to_text(&net);
    let back = network_from_text(Torus::unit(), &text).expect("roundtrip parses");
    assert_eq!(back.len(), net.len());
    // Coverage verdicts identical at probe points.
    for i in 0..20 {
        let p = Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.59) % 1.0);
        assert_eq!(
            is_full_view_covered(&net, p, th),
            is_full_view_covered(&back, p, th),
            "verdict changed after io roundtrip at {p}"
        );
    }
}

#[test]
fn path_coverage_consistent_with_point_checks() {
    use fullview::core::{evaluate_path, Path};
    let th = theta();
    let net = deploy(400, 0.03, 23);
    let path = Path::new(vec![Point::new(0.2, 0.2), Point::new(0.7, 0.6)]);
    let report = evaluate_path(&net, &path, th, 0.05);
    // Re-derive the covered count from raw samples.
    let samples = path.sample(net.torus(), 0.05);
    let manual = samples
        .iter()
        .filter(|p| is_full_view_covered(&net, **p, th))
        .count();
    assert_eq!(report.covered_samples, manual);
    assert_eq!(report.total_samples, samples.len());
}

#[test]
fn stratified_never_worse_than_uniform_on_average() {
    use fullview::deploy::deploy_stratified;
    let th = theta();
    let n = 500;
    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.02, PI / 2.0).expect("valid"));
    let grid = UnitGrid::new(Torus::unit(), 15);
    let mut uni = 0.0;
    let mut strat = 0.0;
    let reps = 8;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(derive_seed(211, seed));
        let u = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits");
        uni += evaluate_grid(&u, th, &grid, Angle::ZERO).full_view_fraction();
        let mut rng = StdRng::seed_from_u64(derive_seed(223, seed));
        let s = deploy_stratified(Torus::unit(), &profile, n, &mut rng).expect("fits");
        strat += evaluate_grid(&s, th, &grid, Angle::ZERO).full_view_fraction();
    }
    // Loose check: stratified should not lose meaningfully on average.
    assert!(
        strat >= uni - 0.05 * reps as f64,
        "stratified {strat} far below uniform {uni}"
    );
}

#[test]
fn temporal_metrics_bracket_static_check() {
    use fullview::core::{always_full_view, eventually_full_view, fraction_of_time_full_view};
    use fullview::deploy::deploy_mobile;
    let th = theta();
    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.04, PI / 2.0).expect("valid"));
    let mut rng = StdRng::seed_from_u64(31);
    let mobile = deploy_mobile(Torus::unit(), &profile, 300, 0.1, 1.0, &mut rng).expect("fits");
    let snaps = mobile.snapshots(3.0, 6);
    for i in 0..15 {
        let p = Point::new((i as f64 * 0.41) % 1.0, (i as f64 * 0.67) % 1.0);
        let frac = fraction_of_time_full_view(&snaps, p, th);
        let always = always_full_view(&snaps, p, th);
        let ever = eventually_full_view(&snaps, p, th);
        assert!((0.0..=1.0).contains(&frac));
        assert_eq!(always, (frac - 1.0).abs() < 1e-12);
        assert_eq!(ever, frac > 0.0);
        if always {
            assert!(ever);
        }
    }
}
