//! Integration tests pitting every analytic formula against Monte-Carlo
//! simulation — the reproduction's core scientific checks at test scale
//! (the experiment binaries run the same comparisons at paper scale).

use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn theta() -> EffectiveAngle {
    EffectiveAngle::new(PI / 4.0).expect("valid θ")
}

/// Fixed probe points, de-correlated from any grid structure.
fn probes(count: usize) -> Vec<Point> {
    (0..count)
        .map(|i| {
            Point::new(
                (i as f64 * 0.618_033_988_75 + 0.03) % 1.0,
                (i as f64 * 0.414_213_562_37 + 0.41) % 1.0,
            )
        })
        .collect()
}

#[test]
fn uniform_necessary_failure_matches_eq2() {
    let th = theta();
    let n = 400;
    let profile = NetworkProfile::builder()
        .group(
            SensorSpec::with_sensing_area(0.012, PI).expect("valid"),
            0.5,
        )
        .group(
            SensorSpec::with_sensing_area(0.008, PI / 2.0).expect("valid"),
            0.5,
        )
        .build()
        .expect("sums to 1");
    let expect = prob_point_fails_necessary(&profile, n, th);

    let pts = probes(20);
    let trials = 60;
    let mut fails = 0usize;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(derive_seed(11, t));
        let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits");
        for p in &pts {
            if !meets_necessary_condition(&net, *p, th, Angle::ZERO) {
                fails += 1;
            }
        }
    }
    let measured = fails as f64 / (trials as usize * pts.len()) as f64;
    let sigma = (expect * (1.0 - expect) / (trials as usize * pts.len()) as f64).sqrt();
    assert!(
        (measured - expect).abs() < 5.0 * sigma + 0.02,
        "eq (2): measured {measured} vs theory {expect} (σ={sigma:.4})"
    );
}

#[test]
fn uniform_sufficient_failure_matches_eq13() {
    let th = theta();
    let n = 400;
    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.03, PI).expect("valid"));
    let expect = prob_point_fails_sufficient(&profile, n, th);

    let pts = probes(20);
    let trials = 60;
    let mut fails = 0usize;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(derive_seed(13, t));
        let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits");
        for p in &pts {
            if !meets_sufficient_condition(&net, *p, th, Angle::ZERO) {
                fails += 1;
            }
        }
    }
    let measured = fails as f64 / (trials as usize * pts.len()) as f64;
    let sigma = (expect * (1.0 - expect) / (trials as usize * pts.len()) as f64).sqrt();
    assert!(
        (measured - expect).abs() < 5.0 * sigma + 0.02,
        "eq (13): measured {measured} vs theory {expect}"
    );
}

#[test]
fn poisson_p_n_and_p_s_match_theorems_3_and_4() {
    let th = theta();
    let density = 500.0;
    let profile = NetworkProfile::builder()
        .group(SensorSpec::new(0.09, PI).expect("valid"), 0.6)
        .group(SensorSpec::new(0.12, PI / 3.0).expect("valid"), 0.4)
        .build()
        .expect("sums to 1");
    let expect_n = prob_point_meets_necessary_poisson(&profile, density, th);
    let expect_s = prob_point_meets_sufficient_poisson(&profile, density, th);

    let pts = probes(20);
    let trials = 60;
    let mut meets_n = 0usize;
    let mut meets_s = 0usize;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(derive_seed(17, t));
        let net = deploy_poisson(Torus::unit(), &profile, density, &mut rng).expect("fits");
        for p in &pts {
            if meets_necessary_condition(&net, *p, th, Angle::ZERO) {
                meets_n += 1;
            }
            if meets_sufficient_condition(&net, *p, th, Angle::ZERO) {
                meets_s += 1;
            }
        }
    }
    let total = (trials as usize * pts.len()) as f64;
    let measured_n = meets_n as f64 / total;
    let measured_s = meets_s as f64 / total;
    assert!(
        (measured_n - expect_n).abs() < 0.06,
        "Theorem 3: measured {measured_n} vs P_N {expect_n}"
    );
    assert!(
        (measured_s - expect_s).abs() < 0.06,
        "Theorem 4: measured {measured_s} vs P_S {expect_s}"
    );
}

#[test]
fn csa_transition_direction_holds_empirically() {
    // Below s_Nc: grids frequently fail; comfortably above s_Sc: grids
    // rarely fail (test-scale n keeps the contrast probabilistic, so the
    // assertion is on frequencies, not certainty).
    let th = theta();
    // n = 600 keeps 1.3x the sufficient CSA torus-feasible.
    let n = 600;
    let trials = 12u64;
    let grid = UnitGrid::new(Torus::unit(), 20);

    let whole_grid_rate = |s_c: f64| -> f64 {
        let profile =
            NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s_c, PI).expect("valid"));
        let mut good = 0usize;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(derive_seed(23, t));
            let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits");
            if evaluate_grid(&net, th, &grid, Angle::ZERO).all_full_view() {
                good += 1;
            }
        }
        good as f64 / trials as f64
    };

    let below = whole_grid_rate(0.5 * csa_necessary(n, th));
    let above = whole_grid_rate(1.3 * csa_sufficient(n, th));
    assert!(below <= 0.25, "below-threshold rate too high: {below}");
    assert!(above >= 0.75, "above-threshold rate too low: {above}");
}

#[test]
fn theta_pi_fullview_equals_one_coverage_everywhere() {
    let th = EffectiveAngle::new(PI).expect("π valid");
    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.01, PI / 2.0).expect("ok"));
    for t in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(derive_seed(29, t));
        let net = deploy_uniform(Torus::unit(), &profile, 200, &mut rng).expect("fits");
        let grid = UnitGrid::new(Torus::unit(), 15);
        for p in grid.iter() {
            assert_eq!(
                is_full_view_covered(&net, p, th),
                net.coverage_count(p) >= 1,
                "θ=π degeneration failed at {p}"
            );
        }
    }
}

#[test]
fn sensing_area_equivalence_shapes_statistically_close() {
    // §VI-A at test scale: two shapes, same area; mean per-trial coverage
    // fractions must agree within a loose tolerance.
    let th = theta();
    let n = 250;
    let area = 0.02;
    let trials = 10u64;
    let grid = UnitGrid::new(Torus::unit(), 18);

    let mean_fraction = |phi: f64, stream: u64| -> f64 {
        let profile =
            NetworkProfile::homogeneous(SensorSpec::with_sensing_area(area, phi).expect("valid"));
        let mut total = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(derive_seed(stream, t));
            let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("fits");
            total += evaluate_grid(&net, th, &grid, Angle::ZERO).full_view_fraction();
        }
        total / trials as f64
    };

    let wide = mean_fraction(PI, 31);
    let narrow = mean_fraction(PI / 6.0, 37);
    assert!(
        (wide - narrow).abs() < 0.08,
        "equal-area shapes diverged: wide {wide} vs narrow {narrow}"
    );
}
